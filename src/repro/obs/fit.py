"""Fitted per-kernel cost models: seconds ~ work counters, closed form.

The cost-model *report* (:mod:`repro.obs.costmodel`) joins each kernel's
wall seconds with its machine-independent counters so a human can check
that a speedup came from doing less work.  This module closes the loop
mechanically: it **fits** a deterministic linear model

    ``seconds  ≈  Σ_f coef[f] · counters[f]  +  per_launch · launches``

per kernel, from any set of cost-model row sources — a live
:meth:`~repro.device.device.Device.profile`, the per-cell ``kernels``
profiles of a ``BENCH_sweep.json`` history, or a service run — and turns
the fit into two operational artifacts:

- a :meth:`FittedCostModel.predict` API (counters in, seconds out) the
  service's admission controller uses instead of hand-set per-point
  constants (see ``docs/service.md``), and
- a :meth:`FittedCostModel.drift` check that flags kernels whose
  *observed* seconds-per-work rate deviates from the fitted rate beyond
  a tolerance — the perf-regression telemetry the bench smoke gate
  otherwise approximates with ratio thresholds on raw wall seconds.

Everything is closed-form least squares (normal equations via
``numpy.linalg.lstsq``) with **non-negativity clipping**: a feature whose
fitted coefficient comes out negative is dropped and the remaining
features are refit, so every retained coefficient is a physically
meaningful nonnegative rate (seconds per distance evaluation cannot be
negative).  After clipping, coefficients are **calibrated** — scaled so
the fit's total predicted seconds equal the sources' total observed
seconds per kernel.  Prediction is linear, so calibration guarantees
``drift()`` over the exact source profile reports ratio 1.0 for every
fitted kernel: a committed ``COSTMODEL.json`` is self-consistent with
the committed baseline it was fitted from, by construction, and the CI
drift gate is a *staleness* check, not a tautology.

The serialized artifact (``COSTMODEL.json``) is fully deterministic:
the same sources produce byte-identical files (sorted keys, no
timestamps, the fingerprint is a content hash of the source rows).

``python -m repro.obs.fit`` exposes the same machinery on the command
line::

    python -m repro.obs.fit fit BENCH_sweep.json -o COSTMODEL.json
    python -m repro.obs.fit validate COSTMODEL.json
    python -m repro.obs.fit drift COSTMODEL.json BENCH_sweep.json
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

#: Counters the fit regresses seconds against, in canonical order.
#: ``launches`` is always appended as the per-launch intercept column.
FIT_FEATURES = (
    "distance_evals",
    "nodes_visited",
    "pairs_processed",
    "bytes_scanned",
    "scatter_adds",
)

#: Default relative drift tolerance: a kernel alarms when its observed
#: seconds leave ``[predicted / (1 + tol), predicted * (1 + tol)]``.
DEFAULT_TOLERANCE = 0.5

#: Artifact schema version (bumped on any incompatible field change).
SCHEMA_VERSION = 1

#: Pooled-fit pseudo-kernel name (the fallback for unseen kernels and
#: the model behind per-request cost prediction).
COMBINED_KEY = "*"

#: Service ops whose per-point rates are fitted separately when the
#: sources carry kernels attributable to them (see :func:`op_for_kernel`).
#: ``cluster`` always pools every kernel — a cluster request runs the
#: full pipeline, so the pooled rates *are* its rates.
PER_POINT_OPS = ("cluster", "count", "knn")


def op_for_kernel(name: str) -> str | None:
    """Attribute a kernel to the service op whose requests launch it.

    ``knn`` wins over ``count`` (``knn_count_exact`` belongs to the knn
    pipeline, not to a plain neighbour count); kernels matching neither
    contribute only to the pooled ``cluster`` rates.
    """
    low = name.lower()
    if "knn" in low:
        return "knn"
    if "count" in low:
        return "count"
    return None


# -- source rows ---------------------------------------------------------------


def fit_rows(profiles) -> list[dict]:
    """Flatten profile sources into fit rows.

    ``profiles`` is an iterable of :meth:`Device.profile`-shaped dicts
    (one per source — a device, a benchmark cell, a service run).  Each
    (source, kernel) pair becomes one row ``{"kernel", "seconds",
    "launches", <FIT_FEATURES...>}``.  Replayed launches are *included*:
    their seconds are recorded real durations (see
    ``Device.profile``'s ``replayed_seconds``), so they are valid
    observations of the kernel's rate.
    """
    rows = []
    for profile in profiles:
        for name in sorted(profile):
            entry = profile[name]
            counters = entry.get("counters") or {}
            row = {
                "kernel": name,
                "seconds": float(entry.get("seconds", 0.0)),
                "launches": float(entry.get("launches", 0)),
            }
            for feature in FIT_FEATURES:
                row[feature] = float(counters.get(feature, 0))
            rows.append(row)
    return rows


def rows_fingerprint(rows: list[dict]) -> str:
    """Content hash of the source rows (path- and order-independent up to
    the canonical sort)."""
    canonical = sorted(
        rows, key=lambda r: (r["kernel"], r["seconds"], r["launches"])
    )
    blob = json.dumps(canonical, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# -- the fit -------------------------------------------------------------------


def _lstsq_nonneg(A: np.ndarray, y: np.ndarray, names: list[str]) -> dict:
    """Least squares with iterative non-negativity clipping.

    Solves ``A x ≈ y``, then repeatedly drops the most negative
    coefficient's column and refits until every retained coefficient is
    nonnegative.  Returns ``{name: coef}`` with dropped names at 0.0.
    Deterministic: the column drop order is a pure function of the data.
    """
    active = list(range(A.shape[1]))
    coef = {name: 0.0 for name in names}
    while active:
        sub = A[:, active]
        x, *_ = np.linalg.lstsq(sub, y, rcond=None)
        worst_i, worst_v = -1, -1e-15
        for i, v in zip(active, x):
            if v < worst_v:
                worst_i, worst_v = i, v
        if worst_i < 0:
            for i, v in zip(active, x):
                coef[names[i]] = float(max(v, 0.0))
            break
        active.remove(worst_i)
    return coef


def _fit_kernel(rows: list[dict]) -> dict:
    """Fit one kernel's rows; returns the serializable fit entry."""
    names = list(FIT_FEATURES) + ["launches"]
    A = np.array([[r[n] for n in names] for r in rows], dtype=np.float64)
    y = np.array([r["seconds"] for r in rows], dtype=np.float64)
    seconds_total = float(y.sum())
    coef = _lstsq_nonneg(A, y, names)
    vec = np.array([coef[n] for n in names], dtype=np.float64)
    pred = A @ vec
    predicted_total = float(pred.sum())
    # Calibrate so the pooled prediction equals the pooled observation:
    # prediction is linear, so drift() over the exact source aggregate
    # then reports ratio 1.0 by construction.
    if predicted_total > 0.0:
        scale = seconds_total / predicted_total
        coef = {n: v * scale for n, v in coef.items()}
        vec = vec * scale
        pred = A @ vec
    elif seconds_total > 0.0 and float(A[:, -1].sum()) > 0.0:
        # Degenerate design (all counters zero): fall back to the mean
        # seconds-per-launch rate, which calibrates exactly.
        coef = {n: 0.0 for n in names}
        coef["launches"] = seconds_total / float(A[:, -1].sum())
        vec = np.array([coef[n] for n in names], dtype=np.float64)
        pred = A @ vec
    residuals = y - pred
    ss_res = float(residuals @ residuals)
    ss_tot = float(((y - y.mean()) ** 2).sum())
    if ss_tot > 0.0:
        r2 = 1.0 - ss_res / ss_tot
    else:
        r2 = 1.0 if ss_res <= 1e-24 else 0.0
    return {
        "coef": {f: coef[f] for f in FIT_FEATURES},
        "per_launch": coef["launches"],
        "r2": r2,
        "residual_rms": float(np.sqrt(ss_res / len(rows))),
        "rows": len(rows),
        "seconds_total": seconds_total,
    }


@dataclass
class FittedCostModel:
    """A fitted, serializable per-kernel cost model (see module docs).

    ``kernels`` maps kernel name to its fit entry (``coef`` per feature,
    ``per_launch`` intercept, ``r2``, ``residual_rms``, ``rows``,
    ``seconds_total``); ``combined`` is the pooled fit over every row
    (the fallback for kernels absent from the fit, and the model behind
    :meth:`cost_for_points`); ``per_point`` holds mean per-point counter
    rates when the sources carried point counts (benchmark records);
    ``unfitted`` lists kernels seen in the sources but skipped because
    they recorded no wall time.
    """

    kernels: dict = field(default_factory=dict)
    combined: dict | None = None
    per_point: dict = field(default_factory=dict)
    #: Per-op mean per-point rates (``{op: {feature: rate}}`` for the ops
    #: of :data:`PER_POINT_OPS` whose kernels appeared in the sources).
    #: ``cluster`` equals the pooled ``per_point`` rates; ``count``/``knn``
    #: carry only their own kernels' work, so admission prices those ops
    #: from what they actually launch instead of a hand-set fraction of a
    #: full clustering.
    per_point_ops: dict = field(default_factory=dict)
    unfitted: list = field(default_factory=list)
    source_fingerprint: str = ""
    fit_seed: int = 0
    tolerance: float = DEFAULT_TOLERANCE
    version: int = SCHEMA_VERSION

    # -- prediction ------------------------------------------------------------

    def predict(
        self, counters: dict, kernel: str | None = None, launches: float = 1.0
    ) -> float:
        """Predicted wall seconds for one kernel aggregate.

        Uses ``kernel``'s own fit when available, else the pooled
        ``combined`` fit; returns 0.0 when neither exists.
        """
        entry = self.kernels.get(kernel) if kernel is not None else None
        if entry is None:
            entry = self.combined
        if entry is None:
            return 0.0
        total = entry["per_launch"] * float(launches)
        for feature, coef in entry["coef"].items():
            total += coef * float(counters.get(feature, 0))
        return total

    def predict_profile(self, profile: dict) -> dict:
        """``{kernel: (observed_seconds, predicted_seconds)}`` over a
        :meth:`Device.profile`-shaped dict (fitted kernels only)."""
        out = {}
        for name, entry in profile.items():
            if name not in self.kernels:
                continue
            out[name] = (
                float(entry.get("seconds", 0.0)),
                self.predict(
                    entry.get("counters") or {},
                    kernel=name,
                    launches=entry.get("launches", 0),
                ),
            )
        return out

    def cost_for_points(
        self, n: int, scale: float = 1.0, op: str | None = None
    ) -> float | None:
        """Predicted seconds for a request over ``n`` points.

        Predicts the request's counters from fitted mean per-point rates
        and prices them with the pooled ``combined`` fit.  When ``op``
        names an op with its own fitted rates (``per_point_ops``), those
        are used directly — they already carry the op's true work, so
        ``scale`` is ignored.  Otherwise the pooled ``per_point`` rates
        are scaled by ``scale`` (the caller's hand-set relative op
        weight).  Returns ``None`` when the model carries no applicable
        rates — callers fall back to their hand-set constants.
        """
        rates = self.per_point_ops.get(op) if op is not None else None
        if rates:
            scale = 1.0
        else:
            rates = self.per_point
        if not rates or self.combined is None:
            return None
        n = max(0, int(n))
        counters = {f: rates.get(f, 0.0) * n * scale for f in FIT_FEATURES}
        launches = rates.get("launches", 0.0) * n * scale
        return self.predict(counters, kernel=None, launches=launches)

    # -- drift -----------------------------------------------------------------

    def drift(self, profile: dict, tolerance: float | None = None) -> dict:
        """Flag kernels whose observed rate left the fitted band.

        For every kernel of ``profile`` with nonzero wall seconds and a
        fit, the observed/predicted seconds ratio must stay within
        ``[1 / (1 + tol), 1 + tol]``.  Kernels present in the profile
        but absent from the fit are reported under ``"unfitted"`` (new
        code paths are surfaced, never silently priced); zero-wall
        kernels are skipped entirely (no rate to check).

        Returns ``{"tolerance", "alarms", "checked", "unfitted"}`` where
        each ``alarms``/``checked`` entry carries ``kernel``,
        ``observed``, ``predicted`` and ``ratio``.
        """
        tol = self.tolerance if tolerance is None else float(tolerance)
        if tol <= 0:
            raise ValueError(f"drift tolerance must be > 0; got {tol}")
        alarms, checked, unfitted = [], [], []
        for name in sorted(profile):
            entry = profile[name]
            observed = float(entry.get("seconds", 0.0))
            if observed <= 0.0:
                continue
            if name not in self.kernels:
                unfitted.append(name)
                continue
            predicted = self.predict(
                entry.get("counters") or {},
                kernel=name,
                launches=entry.get("launches", 0),
            )
            ratio = observed / predicted if predicted > 0 else float("inf")
            row = {
                "kernel": name,
                "observed": observed,
                "predicted": predicted,
                "ratio": ratio,
            }
            checked.append(row)
            if ratio > 1.0 + tol or ratio < 1.0 / (1.0 + tol):
                alarms.append(row)
        return {
            "tolerance": tol,
            "alarms": alarms,
            "checked": checked,
            "unfitted": unfitted,
        }

    # -- serialization ---------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "fit_seed": self.fit_seed,
            "tolerance": self.tolerance,
            "source_fingerprint": self.source_fingerprint,
            "features": list(FIT_FEATURES),
            "kernels": {k: dict(v) for k, v in sorted(self.kernels.items())},
            "combined": dict(self.combined) if self.combined else None,
            "per_point": dict(self.per_point),
            "per_point_ops": {
                op: dict(v) for op, v in sorted(self.per_point_ops.items())
            },
            "unfitted": sorted(self.unfitted),
        }

    def to_json(self) -> str:
        """Deterministic serialization: same fit, same bytes."""
        return json.dumps(self.as_dict(), indent=1, sort_keys=True) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def from_dict(cls, payload: dict) -> "FittedCostModel":
        validate_costmodel(payload)
        return cls(
            kernels={k: dict(v) for k, v in payload["kernels"].items()},
            combined=dict(payload["combined"]) if payload.get("combined") else None,
            per_point=dict(payload.get("per_point") or {}),
            per_point_ops={
                op: dict(v)
                for op, v in (payload.get("per_point_ops") or {}).items()
            },
            unfitted=list(payload.get("unfitted") or []),
            source_fingerprint=payload.get("source_fingerprint", ""),
            fit_seed=int(payload.get("fit_seed", 0)),
            tolerance=float(payload.get("tolerance", DEFAULT_TOLERANCE)),
            version=int(payload["version"]),
        )

    @classmethod
    def load(cls, path: str) -> "FittedCostModel":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def validate_costmodel(payload: dict) -> None:
    """Schema check for a ``COSTMODEL.json`` payload; raises ValueError."""
    if not isinstance(payload, dict):
        raise ValueError("cost model artifact must be a JSON object")
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported cost model version {version!r} "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    for key in ("kernels", "tolerance", "source_fingerprint", "features"):
        if key not in payload:
            raise ValueError(f"cost model artifact missing {key!r}")
    if float(payload["tolerance"]) <= 0:
        raise ValueError(f"tolerance must be > 0; got {payload['tolerance']!r}")
    if not isinstance(payload["kernels"], dict):
        raise ValueError("'kernels' must be an object")
    entries = dict(payload["kernels"])
    if payload.get("combined"):
        entries[COMBINED_KEY] = payload["combined"]
    for name, entry in entries.items():
        for key in ("coef", "per_launch", "r2", "residual_rms", "rows",
                    "seconds_total"):
            if key not in entry:
                raise ValueError(f"kernel fit {name!r} missing {key!r}")
        for feature, value in entry["coef"].items():
            if float(value) < 0:
                raise ValueError(
                    f"kernel fit {name!r} has negative coefficient "
                    f"{feature}={value} (the fit clips these)"
                )


# -- entry points --------------------------------------------------------------


def fit_cost_model(
    profiles,
    per_point: dict | None = None,
    per_point_ops: dict | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    seed: int = 0,
) -> FittedCostModel:
    """Fit a model from profile sources (see :func:`fit_rows`).

    ``per_point`` optionally supplies mean per-point counter rates
    (``{feature_or_'launches'_or_'seconds': value_per_point}``) when the
    caller knows the sources' point counts — :func:`fit_from_records`
    derives them (and the per-op ``per_point_ops`` split) from benchmark
    records automatically.
    """
    rows = fit_rows(profiles)
    by_kernel: dict[str, list[dict]] = {}
    for row in rows:
        by_kernel.setdefault(row["kernel"], []).append(row)
    kernels, unfitted = {}, []
    for name in sorted(by_kernel):
        krows = by_kernel[name]
        if sum(r["seconds"] for r in krows) <= 0.0:
            unfitted.append(name)
            continue
        kernels[name] = _fit_kernel(krows)
    fit_pool = [r for r in rows if r["kernel"] not in unfitted]
    combined = _fit_kernel(fit_pool) if fit_pool else None
    return FittedCostModel(
        kernels=kernels,
        combined=combined,
        per_point=dict(per_point or {}),
        per_point_ops={
            op: dict(v) for op, v in (per_point_ops or {}).items()
        },
        unfitted=unfitted,
        source_fingerprint=rows_fingerprint(rows),
        fit_seed=int(seed),
        tolerance=float(tolerance),
    )


def fit_from_records(
    records, tolerance: float = DEFAULT_TOLERANCE, seed: int = 0
) -> FittedCostModel:
    """Fit from benchmark :class:`~repro.bench.harness.RunRecord` cells.

    Every ``"ok"`` cell with a kernel profile is one source; per-point
    counter rates are derived from the cells' pooled counters and point
    counts, which is what lets the service predict a *request's*
    counters from its size (:meth:`FittedCostModel.cost_for_points`).
    Kernels attributable to a specific service op (:func:`op_for_kernel`)
    additionally feed that op's own per-point rates, so ``count``/``knn``
    admission pricing reflects those ops' actual work.
    """
    profiles, total_n = [], 0
    zero = dict.fromkeys((*FIT_FEATURES, "launches", "seconds"), 0.0)
    totals = dict(zero)
    op_totals = {op: dict(zero) for op in PER_POINT_OPS}
    for rec in records:
        if rec.status != "ok" or not rec.kernels:
            continue
        profiles.append(rec.kernels)
        total_n += max(0, int(rec.n))
        for name, entry in rec.kernels.items():
            counters = entry.get("counters") or {}
            op = op_for_kernel(name)
            sinks = [totals, op_totals["cluster"]]
            if op is not None:
                sinks.append(op_totals[op])
            for sink in sinks:
                for f in FIT_FEATURES:
                    sink[f] += float(counters.get(f, 0))
                sink["launches"] += float(entry.get("launches", 0))
                sink["seconds"] += float(entry.get("seconds", 0.0))
    per_point = (
        {k: v / total_n for k, v in totals.items()} if total_n > 0 else {}
    )
    per_point_ops = {}
    if total_n > 0:
        for op, sums in op_totals.items():
            if any(sums[k] > 0 for k in (*FIT_FEATURES, "launches")):
                per_point_ops[op] = {k: v / total_n for k, v in sums.items()}
    return fit_cost_model(
        profiles,
        per_point=per_point,
        per_point_ops=per_point_ops,
        tolerance=tolerance,
        seed=seed,
    )


def fit_from_history(
    path: str, tolerance: float = DEFAULT_TOLERANCE, seed: int = 0
) -> FittedCostModel:
    """Fit from a ``BENCH_sweep.json`` history file (``--save`` output)."""
    from repro.bench.history import load_records

    records, _meta = load_records(path)
    return fit_from_records(records, tolerance=tolerance, seed=seed)


def format_fit_summary(model: FittedCostModel, title: str = "-- fitted cost model --") -> str:
    """One-line-per-kernel fit digest (r2, rows, dominant coefficient)."""
    lines = [title] if title else []
    lines.append(
        f"fingerprint {model.source_fingerprint[:12]}  "
        f"tolerance {model.tolerance:g}  kernels {len(model.kernels)}"
        + (f"  unfitted {len(model.unfitted)}" if model.unfitted else "")
    )
    for name, entry in sorted(model.kernels.items()):
        top = max(
            entry["coef"].items(), key=lambda kv: kv[1], default=(None, 0.0)
        )
        top_text = (
            f"{top[0]}={top[1]:.3g}s" if top[0] and top[1] > 0
            else f"per_launch={entry['per_launch']:.3g}s"
        )
        lines.append(
            f"  {name:>24}  rows={entry['rows']:<3d} r2={entry['r2']:+.3f}  "
            f"{top_text}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.fit`` — fit / validate / drift on files."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(prog="repro.obs.fit")
    sub = parser.add_subparsers(dest="command", required=True)
    fit_p = sub.add_parser("fit", help="fit COSTMODEL.json from a bench history")
    fit_p.add_argument("history", help="BENCH_sweep.json written by bench --save")
    fit_p.add_argument("-o", "--out", default="COSTMODEL.json")
    fit_p.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    val_p = sub.add_parser("validate", help="schema-check an artifact")
    val_p.add_argument("artifact")
    drift_p = sub.add_parser("drift", help="drift-check an artifact vs a history")
    drift_p.add_argument("artifact")
    drift_p.add_argument("history")
    drift_p.add_argument("--tolerance", type=float, default=None)
    args = parser.parse_args(argv)

    if args.command == "fit":
        model = fit_from_history(args.history, tolerance=args.tolerance)
        model.save(args.out)
        print(format_fit_summary(model, title=f"-- fitted cost model -> {args.out} --"))
        report = _history_drift(model, args.history)
        if report["alarms"]:
            for row in report["alarms"]:
                print(f"  self-drift alarm: {_drift_line(row)}", file=sys.stderr)
            return 1
        return 0
    if args.command == "validate":
        try:
            FittedCostModel.load(args.artifact)
        except (ValueError, OSError, KeyError) as exc:
            print(f"{args.artifact}: INVALID — {exc}", file=sys.stderr)
            return 1
        print(f"{args.artifact}: ok")
        return 0
    # drift
    model = FittedCostModel.load(args.artifact)
    report = _history_drift(model, args.history, tolerance=args.tolerance)
    for row in report["checked"]:
        print(f"  {_drift_line(row)}")
    for name in report["unfitted"]:
        print(f"  unfitted: {name}")
    if report["alarms"]:
        for row in report["alarms"]:
            print(f"  DRIFT: {_drift_line(row)}", file=sys.stderr)
        return 1
    print(f"  ok: no drift past tolerance {report['tolerance']:g}")
    return 0


def _history_drift(model: FittedCostModel, path: str, tolerance=None) -> dict:
    from repro.bench.history import load_records
    from repro.bench.report import merge_kernel_profiles

    records, _ = load_records(path)
    profile = merge_kernel_profiles([r for r in records if r.status == "ok"])
    return model.drift(profile, tolerance=tolerance)


def _drift_line(row: dict) -> str:
    return (
        f"{row['kernel']}: observed {row['observed']:.4g}s vs predicted "
        f"{row['predicted']:.4g}s (ratio {row['ratio']:.3f})"
    )


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    import sys

    sys.exit(main())
