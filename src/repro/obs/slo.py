"""Service-level objectives over :class:`~repro.obs.metrics.MetricsRegistry`.

An SLO states *how good the service must be*, in terms the metrics
surface already measures:

- a **latency** SLO — "``objective`` of requests finish within
  ``target_seconds``" — evaluated against a fixed-bucket latency
  histogram (``repro_service_request_seconds``) with linear in-bucket
  interpolation (:meth:`~repro.obs.metrics.Histogram.count_le`);
- a **latency_quantile** SLO — "the pXX latency stays at or
  below ``target_seconds``" (e.g. "p95 <= 250ms") — evaluated from the
  same histogram's :meth:`~repro.obs.metrics.Histogram.quantile`
  estimate (the number a dashboard's ``histogram_quantile()`` shows),
  with the burn rate defined as ``observed / target`` so 1.0 again means
  the objective is exactly met;
- an **availability** SLO — "``objective`` of requests answer without an
  internal error" — evaluated against the per-status request counter
  (``repro_service_requests_total``).  ``shed`` and ``rejected`` are
  *deliberate* refusals (typed backpressure / protocol errors), so they
  count as good by default: an SLO must not punish the service for its
  own admission control doing its job.

Each evaluation reports the classic error-budget arithmetic: the **bad
fraction** observed, the budget the objective allows, the **burn rate**
(bad fraction / allowed fraction — 1.0 means the budget is exactly
spent), and the **budget remaining** (``1 - burn_rate``; negative means
the objective is violated).

Two evaluation windows exist, selected by the ``window`` field:

- ``"lifetime"`` (the default): the registry's whole history — the
  virtual-clock service accumulates, it does not age out;
- ``"last:N"``: a sliding window over the most recent ``N`` requests,
  evaluated against per-request rows (the service's ledger) instead of
  the registry, so a burst of recent failures raises the burn rate even
  when a long healthy history would dilute it to nothing.  Callers that
  evaluate windowed objectives must supply ``rows`` (each row needs
  ``status`` and ``wall_seconds``, which the service ledger carries).

Everything is a pure function of the registry, so two same-seed traffic
runs report identical SLO status — the determinism contract the rest of
the service keeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import PREFIX, MetricsRegistry

#: Response statuses that count as "good" for availability objectives.
#: ``shed``/``rejected`` are explicit, typed refusals — admission doing
#: its job — and ``degraded`` responses are honest partial answers.
GOOD_STATUSES = ("ok", "degraded", "shed", "rejected")


def parse_window(window: str) -> int | None:
    """``"lifetime"`` -> ``None``; ``"last:N"`` -> ``N`` (positive int).

    Raises ``ValueError`` on anything else — an SLO with an unreadable
    window must fail at construction, not silently evaluate lifetime.
    """
    if window == "lifetime":
        return None
    if window.startswith("last:"):
        try:
            n = int(window[len("last:"):])
        except ValueError:
            n = 0
        if n > 0:
            return n
    raise ValueError(
        f"unknown SLO window {window!r} (expected 'lifetime' or 'last:N')"
    )


@dataclass(frozen=True)
class SLO:
    """One objective (see module docstring for semantics)."""

    name: str
    #: ``"latency"``, ``"latency_quantile"`` or ``"availability"``.
    kind: str
    #: Required good fraction in ``[0, 1)`` (e.g. 0.99).  For
    #: ``latency_quantile`` objectives this is the quantile itself
    #: (0.95 for "p95"), which plays the same role: the fraction of
    #: requests the target must cover.
    objective: float
    #: Latency SLOs: the per-request wall-seconds target.
    target_seconds: float | None = None
    #: Metric the objective reads (histogram for latency, counter for
    #: availability).
    metric: str = ""
    #: Evaluation window: ``"lifetime"`` or ``"last:N"`` (sliding window
    #: over the most recent N requests; needs per-request ``rows``).
    window: str = "lifetime"

    def __post_init__(self):
        if self.kind not in ("latency", "latency_quantile", "availability"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        parse_window(self.window)
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"SLO objective must be in (0, 1); got {self.objective}"
            )
        if self.kind in ("latency", "latency_quantile") and not self.target_seconds:
            raise ValueError(f"{self.kind} SLOs need target_seconds")


#: Default service objectives: fraction-within-target latency,
#: percentile-latency bounds (p95/p99 read from the histogram's quantile
#: estimate) and availability.
DEFAULT_SLOS = (
    SLO(
        "request_latency",
        "latency",
        objective=0.99,
        target_seconds=0.25,
        metric=f"{PREFIX}_service_request_seconds",
    ),
    SLO(
        "latency_p95",
        "latency_quantile",
        objective=0.95,
        target_seconds=0.25,
        metric=f"{PREFIX}_service_request_seconds",
    ),
    SLO(
        "latency_p99",
        "latency_quantile",
        objective=0.99,
        target_seconds=1.0,
        metric=f"{PREFIX}_service_request_seconds",
    ),
    SLO(
        "availability",
        "availability",
        objective=0.99,
        metric=f"{PREFIX}_service_requests_total",
    ),
)


def _rows_quantile(values: list[float], q: float) -> float:
    """Linear-interpolation quantile of raw samples (numpy's default
    method, hand-rolled so windowed evaluation needs no histogram)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def evaluate_slo(slo: SLO, registry: MetricsRegistry, rows=None) -> dict:
    """One objective's status (see module docstring).

    Lifetime objectives read the registry; ``last:N`` objectives read the
    trailing ``N`` entries of ``rows`` (per-request dicts with ``status``
    and ``wall_seconds`` — the service ledger's shape) and raise
    ``ValueError`` when no rows are supplied.
    """
    window_n = parse_window(slo.window)
    good = total = 0.0
    observed: float | None = None
    if window_n is not None:
        if rows is None:
            raise ValueError(
                f"SLO {slo.name!r} has window {slo.window!r} but no "
                f"per-request rows were supplied"
            )
        recent = list(rows)[-window_n:]
        total = float(len(recent))
        for row in recent:
            if slo.kind in ("latency", "latency_quantile"):
                if float(row["wall_seconds"]) <= slo.target_seconds:
                    good += 1.0
            elif row["status"] in GOOD_STATUSES:
                good += 1.0
        if slo.kind == "latency_quantile":
            observed = _rows_quantile(
                [float(row["wall_seconds"]) for row in recent], slo.objective
            )
    else:
        metric = slo.metric or (
            f"{PREFIX}_service_request_seconds"
            if slo.kind in ("latency", "latency_quantile")
            else f"{PREFIX}_service_requests_total"
        )
        if metric in registry:
            instrument = registry.get(metric)
            if slo.kind in ("latency", "latency_quantile"):
                _counts, total = instrument._counts_for(None)
                total = float(total)
                good = instrument.count_le(slo.target_seconds)
                if slo.kind == "latency_quantile":
                    observed = instrument.quantile(slo.objective)
            else:
                for key, value in instrument.values.items():
                    total += value
                    if dict(key).get("status") in GOOD_STATUSES:
                        good += value
    bad = max(0.0, total - good)
    if slo.kind == "latency_quantile":
        # Burn as a fraction of the latency target: the observed pXX over
        # the allowed pXX.  1.0 = the percentile sits exactly on target.
        if total <= 0 or observed is None:
            burn_rate = 0.0
        else:
            burn_rate = observed / float(slo.target_seconds)
    else:
        allowed = (1.0 - slo.objective) * total
        if total <= 0:
            burn_rate = 0.0
        elif allowed > 0:
            burn_rate = bad / allowed
        else:
            burn_rate = 0.0 if bad == 0 else float("inf")
    budget_remaining = 1.0 - burn_rate
    return {
        "name": slo.name,
        "kind": slo.kind,
        "objective": slo.objective,
        "target_seconds": slo.target_seconds,
        "window": slo.window,
        "total": total,
        "good": good,
        "bad": bad,
        "good_fraction": (good / total) if total > 0 else 1.0,
        "observed_seconds": observed,
        "burn_rate": burn_rate,
        "budget_remaining": budget_remaining,
        "ok": burn_rate <= 1.0,
    }


def evaluate_slos(
    registry: MetricsRegistry, slos=DEFAULT_SLOS, rows=None
) -> list[dict]:
    """Every objective's status, in declaration order.  ``rows`` feeds
    any ``last:N``-window objectives (see :func:`evaluate_slo`)."""
    return [evaluate_slo(slo, registry, rows=rows) for slo in slos]


def record_slo_gauges(registry: MetricsRegistry, statuses) -> None:
    """Expose evaluated statuses as ``repro_slo_*`` gauges (labelled by
    objective name) so ``/metrics`` scrapes carry the budget arithmetic."""
    burn = registry.gauge(
        f"{PREFIX}_slo_burn_rate",
        "error-budget burn rate per objective (1.0 = budget exactly spent)",
    )
    remaining = registry.gauge(
        f"{PREFIX}_slo_budget_remaining",
        "error budget remaining per objective (negative = violated)",
    )
    fraction = registry.gauge(
        f"{PREFIX}_slo_good_fraction", "observed good fraction per objective"
    )
    quantile_seconds = registry.gauge(
        f"{PREFIX}_slo_quantile_seconds",
        "observed latency percentile per latency_quantile objective",
    )
    for status in statuses:
        burn.set(status["burn_rate"], slo=status["name"])
        remaining.set(status["budget_remaining"], slo=status["name"])
        fraction.set(status["good_fraction"], slo=status["name"])
        if status.get("observed_seconds") is not None:
            quantile_seconds.set(status["observed_seconds"], slo=status["name"])


def format_slo_report(statuses, title: str = "-- slo --") -> str:
    """One aligned line per objective for text reports."""
    lines = [title] if title else []
    for s in statuses:
        target = (
            f" <= {s['target_seconds'] * 1e3:g}ms" if s["target_seconds"] else ""
        )
        window = (
            f" {s['window']}" if s.get("window", "lifetime") != "lifetime" else ""
        )
        if s["kind"] == "latency_quantile":
            observed = s.get("observed_seconds") or 0.0
            body = (
                f"p{100 * s['objective']:g} {observed * 1e3:.3g}ms "
                f"(target {s['target_seconds'] * 1e3:g}ms)"
            )
            head = f"[p{100 * s['objective']:g}{target}{window}]"
        else:
            body = f"good {s['good_fraction']:.4f} (objective {s['objective']:g})"
            head = f"[{s['kind']}{target}{window}]"
        lines.append(
            f"  {s['name']:>16} {head} {body}  "
            f"burn {s['burn_rate']:.3f}  budget {s['budget_remaining']:+.3f}  "
            f"{'ok' if s['ok'] else 'VIOLATED'}"
        )
    return "\n".join(lines)
