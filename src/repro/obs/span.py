"""OpenTelemetry-flavoured span model for the whole stack.

One :class:`Tracer` collects everything a run does into a single
coherent trace tree: device kernel launches
(:meth:`~repro.device.device.Device.kernel`), communicator transmissions
(:class:`~repro.distributed.comm.SimulatedComm`), distributed-driver
phases (:func:`~repro.distributed.driver.distributed_dbscan`), benchmark
cells (:func:`~repro.bench.harness.run_once` /
:func:`~repro.bench.harness.run_sweep`) and injected fault events
(:class:`~repro.faults.FaultPlan`).  Each :class:`Span` carries

- a **trace id** shared by every span the tracer records,
- a unique **span id** and the **parent span id** (the span active when
  it started), which is what turns four unrelated logs into one tree,
- a **category** (``"kernel"``, ``"comm"``, ``"phase"``, ``"bench"``,
  ...) that exporters map to display lanes,
- free-form **attributes** (thread counts, byte volumes, counter
  deltas) and timestamped **events** (fault injections, retransmits,
  retries) — annotations pinned to a point inside the span.

The model is dependency-free and synchronous: spans are opened/closed
LIFO on one logical thread (exactly how the simulated stack executes),
so parenthood is simply "top of the stack when the span started".

Producers hold a *optional* tracer — every integration point accepts
``tracer=None`` and skips all span work when absent, so the layer costs
nothing when unused.  :data:`NULL_TRACER` is a no-op stand-in for call
sites that prefer unconditional calls over ``if tracer`` guards.

Like the device's kernel ring, the span store is bounded:
:attr:`Tracer.dropped` counts evicted spans, and the exporters emit an
explicit truncation marker instead of silently misaligning
(see :mod:`repro.obs.export`).
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Default capacity of the finished-span ring (oldest evicted first).
DEFAULT_SPAN_MAXLEN = 65536

_TRACE_IDS = itertools.count(1)


@dataclass
class Span:
    """One timed operation in the trace tree.

    ``t_start`` / ``seconds`` are relative to the owning tracer's epoch
    (one clock for every producer — that is what makes kernel, comm and
    driver spans comparable on a single timeline).  ``events`` holds
    ``{"name", "t", "attributes"}`` annotations; ``status`` is ``"ok"``
    or ``"error"`` (the span body raised).
    """

    name: str
    category: str
    trace_id: str
    span_id: str
    parent_id: str | None
    t_start: float
    seconds: float = 0.0
    attributes: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    status: str = "ok"

    def add_event(self, name: str, t: float, attributes: dict | None = None) -> dict:
        event = {"name": name, "t": float(t), "attributes": dict(attributes or {})}
        self.events.append(event)
        return event

    def as_dict(self) -> dict:
        """JSON-ready snapshot."""
        return {
            "name": self.name,
            "category": self.category,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t_start": self.t_start,
            "seconds": self.seconds,
            "attributes": dict(self.attributes),
            "events": [dict(e) for e in self.events],
            "status": self.status,
        }


class Tracer:
    """Collects spans, events and counter samples for one trace.

    Parameters
    ----------
    service:
        Cosmetic name shown by exporters (the Chrome "process" name).
    maxlen:
        Finished-span ring capacity; :attr:`dropped` counts evictions.
    """

    def __init__(self, service: str = "repro", maxlen: int = DEFAULT_SPAN_MAXLEN):
        self.service = service
        self.trace_id = f"{next(_TRACE_IDS):016x}"
        self.spans: "deque[Span]" = deque(maxlen=maxlen)
        self.spans_total = 0
        self.counter_samples: list[tuple[str, float, float]] = []  # (name, t, value)
        self.orphan_events: list[dict] = []
        self._stack: list[Span] = []
        self._ids = itertools.count(1)
        self._epoch = time.perf_counter()

    # -- clock -----------------------------------------------------------------

    def now(self) -> float:
        """Seconds since the tracer's epoch (the trace's time axis)."""
        return time.perf_counter() - self._epoch

    # -- span lifecycle --------------------------------------------------------

    @property
    def current(self) -> Span | None:
        """The innermost open span (parent of anything started now)."""
        return self._stack[-1] if self._stack else None

    def start(self, name: str, category: str = "span", attributes: dict | None = None) -> Span:
        """Open a span as a child of the current one and make it current."""
        span = Span(
            name=name,
            category=category,
            trace_id=self.trace_id,
            span_id=f"{next(self._ids):08x}",
            parent_id=self.current.span_id if self.current else None,
            t_start=self.now(),
            attributes=dict(attributes or {}),
        )
        self._stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close a span opened with :meth:`start`.

        Spans normally close LIFO; closing an outer span while inner ones
        are still open (an exception unwinding past them) closes the
        abandoned inner spans too, marked ``status="error"`` — the trace
        stays well-formed on every error path.
        """
        if span not in self._stack:
            raise RuntimeError(f"span {span.name!r} is not open in this tracer")
        now = self.now()
        while True:
            top = self._stack.pop()
            top.seconds = now - top.t_start
            if top is not span:
                top.status = "error"
            self._finish(top)
            if top is span:
                return span

    @contextmanager
    def span(self, name: str, category: str = "span", attributes: dict | None = None):
        """Context manager form of :meth:`start` / :meth:`end`.

        An exception inside the block marks the span ``status="error"``
        (with an ``exception`` event naming the type) and re-raises.
        """
        span = self.start(name, category=category, attributes=attributes)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.add_event(
                "exception", self.now(), {"type": type(exc).__name__, "message": str(exc)}
            )
            raise
        finally:
            self.end(span)

    def add_span(
        self,
        name: str,
        category: str,
        t_start: float,
        seconds: float,
        attributes: dict | None = None,
        status: str = "ok",
    ) -> Span:
        """Record an already-timed span (e.g. a replayed kernel launch).

        The span is parented under the current open span but never made
        current itself.
        """
        span = Span(
            name=name,
            category=category,
            trace_id=self.trace_id,
            span_id=f"{next(self._ids):08x}",
            parent_id=self.current.span_id if self.current else None,
            t_start=float(t_start),
            seconds=float(seconds),
            attributes=dict(attributes or {}),
            status=status,
        )
        self._finish(span)
        return span

    def _finish(self, span: Span) -> None:
        self.spans.append(span)
        self.spans_total += 1

    # -- annotations -----------------------------------------------------------

    def event(self, name: str, attributes: dict | None = None) -> dict:
        """Attach a timestamped annotation to the current span.

        With no span open the event is kept in :attr:`orphan_events`
        (still exported, just unparented) — fault plans outlive any
        single span, so their late events must not be lost.
        """
        if self.current is not None:
            return self.current.add_event(name, self.now(), attributes)
        event = {"name": name, "t": self.now(), "attributes": dict(attributes or {})}
        self.orphan_events.append(event)
        return event

    def counter(self, name: str, value: float) -> None:
        """Record one sample of a numeric track (frontier size, bytes...).

        Exporters turn these into Chrome counter tracks (``"ph": "C"``).
        """
        self.counter_samples.append((name, self.now(), float(value)))

    # -- views -----------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Finished spans evicted from the bounded ring."""
        return self.spans_total - len(self.spans)

    def snapshot(self) -> list[dict]:
        """Finished spans as plain dicts, oldest first."""
        return [span.as_dict() for span in self.spans]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(service={self.service!r}, trace_id={self.trace_id}, "
            f"spans={len(self.spans)}, dropped={self.dropped})"
        )


class _NullTracer:
    """A no-op :class:`Tracer` stand-in: every method accepts anything
    and records nothing, so producers may call it unconditionally."""

    trace_id = "0" * 16
    spans_total = 0
    dropped = 0

    @contextmanager
    def span(self, name, category="span", attributes=None):
        yield None

    def start(self, *args, **kwargs):  # pragma: no cover - trivial
        return None

    def end(self, span):  # pragma: no cover - trivial
        return None

    def add_span(self, *args, **kwargs):
        return None

    def event(self, name, attributes=None):
        return None

    def counter(self, name, value):
        return None

    def now(self) -> float:
        return 0.0

    def snapshot(self) -> list:
        return []


#: Shared no-op tracer; ``tracer or NULL_TRACER`` is the idiom producers
#: use to avoid sprinkling ``if tracer is not None`` checks.
NULL_TRACER = _NullTracer()
