"""Metrics registry: counters, gauges, histograms + text expositions.

The trace (:mod:`repro.obs.span`) answers *when* things happened; the
metrics registry answers *how much* — the totals a scrape endpoint or a
spreadsheet wants.  Three instrument kinds, mirroring the Prometheus
data model:

- :class:`Counter` — monotonically accumulated totals (distance
  evaluations, messages, bytes, injected faults);
- :class:`Gauge` — point-in-time values and high-watermarks (frontier
  peak, peak device bytes, cache hit ratio);
- :class:`Histogram` — distributions over **fixed buckets** (kernel
  wall seconds), so two runs' histograms are always mergeable.

Every instrument supports labels (``phase="ghosts"``); exposition is
Prometheus text format (:meth:`MetricsRegistry.to_prometheus`) or flat
CSV (:meth:`MetricsRegistry.to_csv`).

The ``record_*`` bridges populate a registry from the accounting objects
the stack already produces — :class:`~repro.device.counters.KernelCounters`
snapshots, :class:`~repro.distributed.comm.CommStats` dicts, fault-plan
summaries and benchmark :class:`~repro.bench.harness.RunRecord` lists —
with the invariant that **every exported total equals the source value**
(asserted by the test suite): the registry is a view, never a second
source of truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Fixed wall-seconds buckets for kernel/span duration histograms.
#: Chosen to straddle the simulated device's typical launch times
#: (tens of microseconds to seconds); fixed so histograms merge.
DEFAULT_SECONDS_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0
)

#: Metric-name prefix for everything this package exports.
PREFIX = "repro"


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_text(key: tuple) -> str:
    if not key:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"


def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


@dataclass
class Counter:
    """A monotonically increasing total (per label set)."""

    name: str
    help: str = ""
    values: dict = field(default_factory=dict)

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        key = _label_key(labels)
        self.values[key] = self.values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self.values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self.values.values())

    def exposition(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        for key in sorted(self.values):
            lines.append(f"{self.name}{_label_text(key)} {_fmt_value(self.values[key])}")
        return lines

    def rows(self) -> list[tuple]:
        return [
            (self.name, "counter", dict(key), value)
            for key, value in sorted(self.values.items())
        ]


@dataclass
class Gauge:
    """A point-in-time value (per label set); supports high-watermarks."""

    name: str
    help: str = ""
    values: dict = field(default_factory=dict)

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self.values[_label_key(labels)] = float(value)

    def observe_max(self, value: float, **labels) -> None:
        key = _label_key(labels)
        self.values[key] = max(self.values.get(key, float("-inf")), float(value))

    def value(self, **labels) -> float:
        return self.values.get(_label_key(labels), 0.0)

    def exposition(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} gauge"]
        for key in sorted(self.values):
            lines.append(f"{self.name}{_label_text(key)} {_fmt_value(self.values[key])}")
        return lines

    def rows(self) -> list[tuple]:
        return [
            (self.name, "gauge", dict(key), value)
            for key, value in sorted(self.values.items())
        ]


@dataclass
class Histogram:
    """Fixed-bucket distribution (per label set).

    Buckets are upper bounds, cumulative in exposition (Prometheus
    semantics: ``le="0.1"`` counts every observation ``<= 0.1``, and the
    implicit ``+Inf`` bucket equals the observation count).
    """

    name: str
    help: str = ""
    buckets: tuple = DEFAULT_SECONDS_BUCKETS
    series: dict = field(default_factory=dict)  # label key -> [counts, sum, n]

    kind = "histogram"

    def __post_init__(self):
        self.buckets = tuple(sorted(float(b) for b in self.buckets))
        if not self.buckets:
            raise ValueError(f"histogram {self.name} needs at least one bucket")

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        counts, total, n = self.series.setdefault(
            key, [[0] * (len(self.buckets) + 1), 0.0, 0]
        )
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1  # the +Inf bucket
        entry = self.series[key]
        entry[1] = total + float(value)
        entry[2] = n + 1

    def count(self, **labels) -> int:
        entry = self.series.get(_label_key(labels))
        return entry[2] if entry else 0

    def sum(self, **labels) -> float:
        entry = self.series.get(_label_key(labels))
        return entry[1] if entry else 0.0

    # -- estimation ------------------------------------------------------------

    def _counts_for(self, labels: dict | None) -> tuple[list, int]:
        """Per-bucket counts (plus the +Inf bucket) and the observation
        total — one label set when ``labels`` is given, every label set
        merged when ``labels`` is None (fixed buckets make the merge a
        plain elementwise sum)."""
        merged = [0] * (len(self.buckets) + 1)
        n = 0
        if labels is None:
            series = self.series.values()
        else:
            entry = self.series.get(_label_key(labels))
            series = [entry] if entry is not None else []
        for counts, _total, count in series:
            for i, c in enumerate(counts):
                merged[i] += c
            n += count
        return merged, n

    def quantile(self, q: float, labels: dict | None = None) -> float:
        """Estimated ``q``-quantile with linear interpolation in-bucket.

        ``labels=None`` merges every label set (the overall
        distribution); pass a dict for one series.  The estimate
        interpolates linearly between a bucket's lower and upper bound —
        the Prometheus ``histogram_quantile`` convention — with the
        first bucket's lower bound at 0 (durations are nonnegative).
        Observations in the ``+Inf`` bucket clamp to the highest finite
        bound (there is no upper edge to interpolate toward).  Returns
        0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q must be in [0, 1]; got {q}")
        counts, n = self._counts_for(labels)
        if n == 0:
            return 0.0
        rank = q * n
        cumulative = 0.0
        lower = 0.0
        for bound, c in zip(self.buckets, counts):
            if cumulative + c >= rank and c > 0:
                frac = (rank - cumulative) / c
                return lower + (bound - lower) * min(max(frac, 0.0), 1.0)
            cumulative += c
            lower = bound
        return float(self.buckets[-1])

    def count_le(self, value: float, labels: dict | None = None) -> float:
        """Estimated observations ``<= value`` (linear within the bucket
        containing ``value``; ``+Inf``-bucket observations never count —
        the conservative choice for latency objectives).  ``labels=None``
        merges every label set."""
        counts, _n = self._counts_for(labels)
        total = 0.0
        lower = 0.0
        for bound, c in zip(self.buckets, counts):
            if value >= bound:
                total += c
            elif value > lower:
                total += c * (value - lower) / (bound - lower)
                break
            else:
                break
            lower = bound
        return total

    def exposition(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} histogram"]
        for key in sorted(self.series):
            counts, total, n = self.series[key]
            cumulative = 0
            for bound, c in zip((*self.buckets, math.inf), counts):
                cumulative += c
                labels = dict(key)
                labels["le"] = _fmt_value(bound)
                lines.append(
                    f"{self.name}_bucket{_label_text(_label_key(labels))} {cumulative}"
                )
            lines.append(f"{self.name}_sum{_label_text(key)} {_fmt_value(total)}")
            lines.append(f"{self.name}_count{_label_text(key)} {n}")
        return lines

    def rows(self) -> list[tuple]:
        out = []
        for key in sorted(self.series):
            _counts, total, n = self.series[key]
            out.append((f"{self.name}_sum", "histogram", dict(key), total))
            out.append((f"{self.name}_count", "histogram", dict(key), float(n)))
        return out


class MetricsRegistry:
    """A named collection of instruments with text expositions."""

    def __init__(self):
        self._metrics: dict[str, object] = {}

    def _get(self, cls, name: str, help: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name=name, help=help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple = DEFAULT_SECONDS_BUCKETS
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def get(self, name: str):
        """The registered instrument named ``name`` (KeyError if absent)."""
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # -- expositions -----------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (one block per metric)."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].exposition())
        return "\n".join(lines) + ("\n" if lines else "")

    def to_csv(self) -> str:
        """Flat ``metric,kind,labels,value`` CSV for spreadsheets."""
        lines = ["metric,kind,labels,value"]
        for name in sorted(self._metrics):
            for metric_name, kind, labels, value in self._metrics[name].rows():
                label_text = ";".join(f"{k}={v}" for k, v in sorted(labels.items()))
                lines.append(f"{metric_name},{kind},{label_text},{_fmt_value(value)}")
        return "\n".join(lines) + "\n"


# -- bridges from the stack's accounting objects -------------------------------

#: KernelCounters fields that are high-watermarks, not totals — exported
#: as gauges (merging two runs' peaks takes a max, never a sum).
_WATERMARK_COUNTERS = {"frontier_peak"}


def record_kernel_counters(registry: MetricsRegistry, counters: dict, **labels) -> None:
    """Export a :meth:`KernelCounters.snapshot` dict.

    Each counter becomes ``repro_<name>_total`` (watermarks become the
    gauge ``repro_<name>``); exported values equal the snapshot exactly.
    """
    for name, value in counters.items():
        if name in _WATERMARK_COUNTERS:
            registry.gauge(
                f"{PREFIX}_{name}", f"high-watermark device counter {name}"
            ).observe_max(value, **labels)
        else:
            registry.counter(
                f"{PREFIX}_{name}_total", f"device work counter {name}"
            ).inc(value, **labels)


def record_kernel_profile(registry: MetricsRegistry, profile: dict, **labels) -> None:
    """Export a :meth:`Device.profile` dict: per-kernel launch counts,
    inclusive/self seconds and a fixed-bucket launch-duration histogram
    (approximated from per-kernel means when only aggregates exist)."""
    launches = registry.counter(
        f"{PREFIX}_kernel_launches_by_name_total", "kernel launches per kernel name"
    )
    seconds = registry.counter(
        f"{PREFIX}_kernel_seconds_total", "inclusive kernel wall seconds per kernel name"
    )
    self_seconds = registry.counter(
        f"{PREFIX}_kernel_self_seconds_total",
        "exclusive (self) kernel wall seconds per kernel name",
    )
    for name, row in profile.items():
        launches.inc(row["launches"], kernel=name, **labels)
        seconds.inc(row["seconds"], kernel=name, **labels)
        self_seconds.inc(row.get("self_seconds", row["seconds"]), kernel=name, **labels)


def record_launch_seconds(registry: MetricsRegistry, launches, **labels) -> None:
    """Observe each :class:`KernelLaunch`'s wall seconds into the
    ``repro_kernel_seconds`` fixed-bucket histogram."""
    hist = registry.histogram(
        f"{PREFIX}_kernel_seconds", "kernel launch wall-seconds distribution"
    )
    for launch in launches:
        hist.observe(launch.seconds, kernel=launch.name, **labels)


def record_comm_stats(registry: MetricsRegistry, stats: dict, **labels) -> None:
    """Export a :meth:`CommStats.as_dict` snapshot.

    Per-phase messages/bytes/retransmits are labelled by ``phase`` (their
    label-summed totals equal ``messages`` / ``bytes_sent`` /
    ``retransmits`` by CommStats' own bookkeeping); the fault tallies
    become scalar counters; the simulated wait becomes a gauge.
    """
    messages = registry.counter(f"{PREFIX}_comm_messages_total", "messages transmitted")
    nbytes = registry.counter(f"{PREFIX}_comm_bytes_total", "payload bytes transmitted")
    retx = registry.counter(f"{PREFIX}_comm_retransmits_total", "retransmitted messages")
    for phase, entry in stats.get("by_phase", {}).items():
        messages.inc(entry["messages"], phase=phase, **labels)
        nbytes.inc(entry["bytes"], phase=phase, **labels)
        retx.inc(entry["retransmits"], phase=phase, **labels)
    for key in ("drops", "timeouts", "corruptions_detected", "duplicates_dropped", "reorders"):
        registry.counter(
            f"{PREFIX}_comm_{key}_total", f"communicator fault tally: {key}"
        ).inc(stats.get(key, 0), **labels)
    registry.gauge(
        f"{PREFIX}_comm_sim_wait_seconds", "simulated backoff wait seconds"
    ).set(stats.get("sim_wait_seconds", 0.0), **labels)


def record_fault_summary(registry: MetricsRegistry, summary: dict, **labels) -> None:
    """Export a :meth:`FaultPlan.summary` dict as per-kind fault counters."""
    faults = registry.counter(f"{PREFIX}_faults_injected_total", "injected faults by kind")
    for kind, count in summary.get("by_kind", {}).items():
        faults.inc(count, kind=kind, **labels)


def record_run_records(registry: MetricsRegistry, records, **labels) -> None:
    """Export a benchmark record list: per-status cell counts, retry
    totals, index-cache reuse counters and the derived hit ratio."""
    cells = registry.counter(f"{PREFIX}_bench_cells_total", "benchmark cells by status")
    retries = registry.counter(f"{PREFIX}_bench_retries_total", "benchmark cell retries")
    reused = registry.counter(
        f"{PREFIX}_index_reuse_total", "cells that replayed a cached index build"
    )
    built = registry.counter(
        f"{PREFIX}_index_build_total", "cells that built their index live"
    )
    peak = registry.gauge(f"{PREFIX}_peak_device_bytes", "peak device bytes over all cells")
    n_reused = n_built = 0
    for rec in records:
        cells.inc(1, status=rec.status, algorithm=rec.algorithm, **labels)
        retries.inc(max(rec.attempts - 1, 0), algorithm=rec.algorithm, **labels)
        peak.observe_max(rec.peak_bytes, **labels)
        if rec.status != "ok":
            continue
        if rec.reused_index:
            n_reused += 1
            reused.inc(1, **labels)
        else:
            n_built += 1
            built.inc(1, **labels)
    if n_reused + n_built:
        registry.gauge(
            f"{PREFIX}_index_cache_hit_ratio",
            "fraction of ok cells that reused a cached index build",
        ).set(n_reused / (n_reused + n_built), **labels)


def record_trace_health(
    registry: MetricsRegistry, tracer=None, devices=(), **labels
) -> None:
    """Export trace-ring health: silently dropped spans become gauges.

    ``repro_trace_spans_dropped`` (and ``..._total`` span counts) come
    from the :class:`~repro.obs.span.Tracer`'s bounded ring;
    ``repro_device_trace_dropped`` is each device's evicted-launch count
    (labelled by device name).  Dropped spans truncate exactly the
    traces the cost-model fit consumes, so the drops must be visible on
    the same scrape surface as everything else.
    """
    if tracer is not None:
        registry.gauge(
            f"{PREFIX}_trace_spans_dropped",
            "spans evicted from the tracer's bounded ring",
        ).set(getattr(tracer, "dropped", 0), **labels)
        registry.gauge(
            f"{PREFIX}_trace_spans_total", "spans recorded by the tracer"
        ).set(getattr(tracer, "spans_total", 0), **labels)
    for device in devices:
        registry.gauge(
            f"{PREFIX}_device_trace_dropped",
            "kernel launches evicted from the device's bounded trace ring",
        ).set(device.trace_dropped, device=device.name, **labels)


def record_counter_rates(registry: MetricsRegistry, records, **labels) -> None:
    """Export each ``ok`` cell's per-point counter rates as gauges.

    One ``repro_bench_counter_rate`` series per
    :meth:`~repro.bench.harness.RunRecord.counter_rates` entry, labelled
    by counter name and cell identity — the size-normalised work numbers
    the regression comparison tracks across commits (wall seconds are
    machine-dependent; ``distance_evals / n`` is not).
    """
    gauge = registry.gauge(
        f"{PREFIX}_bench_counter_rate",
        "per-point work-counter rate (counter value / n) per benchmark cell",
    )
    for rec in records:
        if rec.status != "ok":
            continue
        for name, value in rec.counter_rates().items():
            gauge.set(
                value,
                counter=name,
                algorithm=rec.algorithm,
                dataset=rec.dataset,
                n=rec.n,
                eps=rec.eps,
                minpts=rec.min_samples,
                **labels,
            )
