"""Command-line Chrome-trace validator: ``python -m repro.obs.validate``.

CI's observability smoke job runs a tiny sweep with ``--trace-out`` and
then this module against the emitted file; a nonzero exit names every
schema violation (see :func:`repro.obs.export.validate_chrome_trace`).
"""

from __future__ import annotations

import sys

from repro.obs.export import validate_chrome_trace_file


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.validate TRACE.json [TRACE.json ...]")
        return 2
    status = 0
    for path in argv:
        try:
            counts = validate_chrome_trace_file(path)
        except (ValueError, OSError) as exc:
            print(f"{path}: INVALID\n{exc}")
            status = 1
        else:
            print(
                f"{path}: ok — {counts['events']} events, {counts['spans']} spans, "
                f"{counts['counters']} counter samples, {counts['instants']} instants, "
                f"{counts['dropped_spans']} dropped"
            )
    return status


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(main())
