"""NGSIM stand-in: vehicle-trajectory points on a few highway segments.

The real NGSIM dataset holds 11.8M (longitude, latitude) samples of car
trajectories recorded by cameras over **three highway locations** — in
coordinate space, a handful of extremely thin, extremely dense line
segments (Figure 3 of the paper zooms on one).  The paper's observations
that matter for the figures:

- at the study's settings (eps = 0.005, samples of 16,384 points) the
  data is "overly dense even for small values of eps": neighbourhoods
  hold hundreds of points, and over 95 % of points fall into dense grid
  cells even at minpts = 500;
- no algorithm is sensitive to eps on this data (everything is already
  connected at tiny radii).

The generator reproduces that geometry directly: three short multi-lane
corridors (length ~0.02 degrees, lane spread ~0.001) placed well apart,
with traffic clumped by congestion waves so that per-cell occupancy at
cell size 0.005/sqrt(2) reaches the hundreds for 16k-point samples.
"""

from __future__ import annotations

import numpy as np

#: Figure-calibrated defaults (degree-like units, three study locations).
_SEGMENTS = (
    ((0.00, 0.00), 35.0),  # (origin), heading degrees
    ((0.30, 0.25), 120.0),
    ((0.55, 0.05), 80.0),
)
_SEGMENT_LENGTH = 0.015
_LANES = 5
_LANE_SPACING = 2.5e-4
_JITTER = 6e-5
_CONGESTION_WAVES = 3
_WAVE_STD = 0.01


def ngsim_trajectories(n: int, seed: int = 0) -> np.ndarray:
    """Generate ``n`` 2-D trajectory points across the three corridors.

    Points cluster along each corridor in congestion waves (vehicles bunch
    up), matching the extreme local densities of camera-sampled highway
    traffic.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    seg = rng.integers(0, len(_SEGMENTS), size=n)
    # Congestion waves: along-track position mixture of tight bumps.
    wave_centers = rng.uniform(0, 1, size=(len(_SEGMENTS), _CONGESTION_WAVES))
    wave = rng.integers(0, _CONGESTION_WAVES, size=n)
    t = wave_centers[seg, wave] + rng.normal(0, _WAVE_STD, size=n)
    t = np.clip(t, 0, 1) * _SEGMENT_LENGTH
    lane = rng.integers(0, _LANES, size=n)
    lateral = (lane - (_LANES - 1) / 2) * _LANE_SPACING + rng.normal(0, _JITTER, n)

    out = np.empty((n, 2), dtype=np.float64)
    for k, ((ox, oy), heading) in enumerate(_SEGMENTS):
        mask = seg == k
        rad = np.deg2rad(heading)
        c, s = np.cos(rad), np.sin(rad)
        out[mask, 0] = ox + t[mask] * c - lateral[mask] * s
        out[mask, 1] = oy + t[mask] * s + lateral[mask] * c
    return out
