"""HACC cosmology stand-in: a 3-D particle snapshot with formed halos.

The paper's 3-D experiment uses one MPI rank of a HACC N-body simulation
(36M+ particles) at the final timestep, "with clusters clearly formed":
compact halos with steep radial density profiles sitting on a sparse,
fairly uniform background — "vastly more sparse, and more evenly
distributed" than the 2-D road/taxi data.  The figures depend on these
facts (all stated in Section 5.2, for eps = 0.042):

- dense-cell occupancy falls from ~13 % (minpts = 5) to <2 % (minpts = 50)
  to none (minpts > 100) — Figure 6's crossover where FDBSCAN overtakes
  DenseBox;
- growing eps to 1.0 pushes ~91 % of points into dense cells, opening a
  ~16x gap in DenseBox's favour (Figure 7);
- the virtual grid at eps = 0.042 has billions of cells, only millions
  non-empty.

The generator samples halos with an NFW-like (r^-1 inner slope, steep
outer fall-off) radial profile, halo masses from a power law, plus a
uniform background, in a periodic cube.  Halo concentration is calibrated
so the occupancy-vs-minpts ladder above holds for ~100k-point samples at
eps = 0.042 after rescaling the box to keep the *per-cell occupancy*
regime of the 36M-particle original.
"""

from __future__ import annotations

import numpy as np

#: Box edge, in the paper's Mpc/h-like units, scaled down so that a 10^5
#: sample reproduces the 36M-particle run's per-cell occupancies.
BOX_SIZE = 8.0
_HALO_FRACTION = 0.62  # fraction of particles bound in halos
_N_HALOS_PER_10K = 28
_MASS_SLOPE = 1.9  # halo occupancy power law
_CORE_RADIUS = 0.012
_OUTER_RADIUS = 0.35


def hacc_cosmology(n: int, seed: int = 0, box_size: float = BOX_SIZE) -> np.ndarray:
    """Generate an ``n``-particle 3-D snapshot in a periodic cube."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    n_halo_pts = int(n * _HALO_FRACTION)
    n_bg = n - n_halo_pts
    n_halos = max(1, int(_N_HALOS_PER_10K * n / 10_000))

    centers = rng.uniform(0, box_size, size=(n_halos, 3))
    # Power-law halo occupancies (few big halos, many small).
    raw = rng.pareto(_MASS_SLOPE, size=n_halos) + 1.0
    weights = raw / raw.sum()
    halo = rng.choice(n_halos, size=n_halo_pts, p=weights)

    # NFW-like radial profile: r = r_core * (u^{-1} - 1)^{-?} is awkward to
    # invert exactly; we use the standard trick of sampling
    # log-uniform-ish radii between the core and outer radius with an
    # r^-1-weighted inner pile-up: r = r_core * exp(u * ln(r_out/r_core))
    # gives dN/dr ~ 1/r, matching NFW's rho ~ r^-1 inner slope in shells.
    u = rng.uniform(0, 1, size=n_halo_pts)
    radius = _CORE_RADIUS * np.exp(u * np.log(_OUTER_RADIUS / _CORE_RADIUS))
    direction = rng.normal(size=(n_halo_pts, 3))
    direction /= np.linalg.norm(direction, axis=1, keepdims=True)
    halo_pts = centers[halo] + radius[:, None] * direction

    bg = rng.uniform(0, box_size, size=(n_bg, 3))
    pts = np.concatenate([halo_pts, bg], axis=0)
    np.mod(pts, box_size, out=pts)  # periodic wrap
    return pts[rng.permutation(n)]
