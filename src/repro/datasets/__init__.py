"""Synthetic stand-ins for the paper's evaluation datasets.

The paper evaluates on four real datasets (NGSIM vehicle trajectories,
Porto taxi GPS traces, the North-Jutland 3D road network, and a HACC
cosmology snapshot) that are not redistributable and reach 81M points.
Each generator here reproduces the corresponding dataset's *density
structure* — the property the figures actually depend on: how many points
fall into dense grid cells at the paper's ``(eps, minpts)`` settings, how
large eps-neighbourhoods get, and how the eps-graph mass grows.

All generators are deterministic in ``seed`` and return float64 ``(n, d)``
arrays.  :mod:`repro.datasets.registry` maps dataset names to generators
together with the per-figure parameters from Section 5.
"""

from repro.datasets.hacc import hacc_cosmology
from repro.datasets.ngsim import ngsim_trajectories
from repro.datasets.portotaxi import portotaxi_traces
from repro.datasets.registry import DATASETS, load_dataset, paper_params
from repro.datasets.road3d import road_network_3d
from repro.datasets.synthetic import gaussian_blobs, noisy_rings, uniform_box

__all__ = [
    "DATASETS",
    "gaussian_blobs",
    "hacc_cosmology",
    "load_dataset",
    "ngsim_trajectories",
    "noisy_rings",
    "paper_params",
    "portotaxi_traces",
    "road_network_3d",
    "uniform_box",
]
