"""Generic synthetic point sets for tests and examples."""

from __future__ import annotations

import numpy as np


def gaussian_blobs(
    n: int,
    centers: int = 3,
    std: float = 0.1,
    dim: int = 2,
    box: float = 10.0,
    seed: int = 0,
    noise_fraction: float = 0.0,
) -> np.ndarray:
    """Isotropic Gaussian clusters plus optional uniform background noise.

    ``centers`` cluster centres are drawn uniformly in ``[0, box]^dim``;
    points split evenly among clusters (remainder to the first ones);
    ``noise_fraction`` of the points is replaced by uniform background.
    """
    if n <= 0 or centers <= 0:
        raise ValueError("n and centers must be positive")
    rng = np.random.default_rng(seed)
    ctrs = rng.uniform(0, box, size=(centers, dim))
    assignment = np.arange(n) % centers
    X = ctrs[assignment] + rng.normal(0, std, size=(n, dim))
    n_noise = int(round(n * noise_fraction))
    if n_noise:
        idx = rng.choice(n, size=n_noise, replace=False)
        X[idx] = rng.uniform(-0.5 * box, 1.5 * box, size=(n_noise, dim))
    return X


def uniform_box(n: int, dim: int = 2, box: float = 1.0, seed: int = 0) -> np.ndarray:
    """Uniform points in ``[0, box]^dim`` (the unclustered null case)."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    return rng.uniform(0, box, size=(n, dim))


def noisy_rings(
    n: int,
    rings: int = 2,
    radius_step: float = 1.0,
    noise: float = 0.03,
    seed: int = 0,
) -> np.ndarray:
    """Concentric 2-D rings — the classic arbitrary-shape case DBSCAN is
    motivated by (centroid methods cannot separate them)."""
    if n <= 0 or rings <= 0:
        raise ValueError("n and rings must be positive")
    rng = np.random.default_rng(seed)
    ring = np.arange(n) % rings
    radius = (ring + 1) * radius_step + rng.normal(0, noise, n)
    theta = rng.uniform(0, 2 * np.pi, n)
    return np.column_stack([radius * np.cos(theta), radius * np.sin(theta)])
