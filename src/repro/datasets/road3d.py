"""3D Road stand-in: points along a province-scale road network.

The real dataset (Kaul et al. 2013) holds 400k+ points of the North
Jutland road network with elevation; the paper uses only longitude and
latitude — a strongly one-dimensional, filamentary 2-D structure: thin
polylines spanning a large domain, dense along the lines and empty
elsewhere.  At the study's settings (eps up to 0.08, minpts up to 100)
over 95 % of the sampled points sit in dense cells, and FDBSCAN-DenseBox
beats G-DBSCAN by ~2.5x (Figure 4(c)).

The generator grows a random road network: a handful of trunk roads
crossing the domain plus branching local roads, each a jittered polyline
sampled proportionally to its length.  Road-point spacing is far below
the study's cell sizes, giving the filament-dense regime.
"""

from __future__ import annotations

import numpy as np

_DOMAIN = 1.2  # degree-like span of the province
_TRUNKS = 4
_BRANCHES = 10
_WIGGLE = 0.04
_JITTER = 1.2e-3
_TRUNK_TRAFFIC = 3.0  # sampling weight of trunk roads vs local roads


def _polyline(rng: np.random.Generator, start: np.ndarray, end: np.ndarray, knots: int):
    """A wiggly polyline between two endpoints (knots x 2 vertices)."""
    t = np.linspace(0, 1, knots)[:, None]
    base = start + t * (end - start)
    normal = np.array([-(end - start)[1], (end - start)[0]])
    norm = np.linalg.norm(normal)
    if norm > 0:
        normal = normal / norm
    offsets = rng.normal(0, _WIGGLE, size=knots)
    offsets[0] = offsets[-1] = 0.0
    return base + offsets[:, None] * normal


def road_network_3d(n: int, seed: int = 0) -> np.ndarray:
    """Generate ``n`` 2-D road-network points (the dataset's lon/lat use)."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)

    segments = []  # (a, b) vertex pairs
    traffic = []  # per-segment sampling weight (trunks carry more points)
    trunk_vertices = []
    for _ in range(_TRUNKS):
        side = rng.integers(0, 2)
        if side == 0:
            start = np.array([0.0, rng.uniform(0, _DOMAIN)])
            end = np.array([_DOMAIN, rng.uniform(0, _DOMAIN)])
        else:
            start = np.array([rng.uniform(0, _DOMAIN), 0.0])
            end = np.array([rng.uniform(0, _DOMAIN), _DOMAIN])
        poly = _polyline(rng, start, end, knots=14)
        trunk_vertices.append(poly)
        segments.extend(zip(poly[:-1], poly[1:]))
        traffic.extend([_TRUNK_TRAFFIC] * (poly.shape[0] - 1))
    trunk_vertices = np.concatenate(trunk_vertices)

    for _ in range(_BRANCHES):
        a = trunk_vertices[rng.integers(0, trunk_vertices.shape[0])]
        direction = rng.normal(size=2)
        direction /= np.linalg.norm(direction)
        b = np.clip(a + direction * rng.uniform(0.08, 0.25), 0, _DOMAIN)
        poly = _polyline(rng, a, b, knots=6)
        segments.extend(zip(poly[:-1], poly[1:]))
        traffic.extend([1.0] * (poly.shape[0] - 1))

    a = np.array([s[0] for s in segments])
    b = np.array([s[1] for s in segments])
    lengths = np.linalg.norm(b - a, axis=1) * np.array(traffic)
    weights = lengths / lengths.sum()
    pick = rng.choice(len(segments), size=n, p=weights)
    t = rng.uniform(0, 1, size=n)[:, None]
    pts = a[pick] + t * (b[pick] - a[pick])
    return pts + rng.normal(0, _JITTER, size=(n, 2))
