"""Dataset registry: names, generators and the paper's per-figure settings.

Every benchmark addresses datasets by name through :func:`load_dataset`
and reads the exact Section-5 parameters from :func:`paper_params`, so the
figure scripts contain no magic numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets.hacc import hacc_cosmology
from repro.datasets.ngsim import ngsim_trajectories
from repro.datasets.portotaxi import portotaxi_traces
from repro.datasets.road3d import road_network_3d


@dataclass(frozen=True)
class DatasetSpec:
    """A registered dataset: generator plus the paper's study parameters."""

    name: str
    generator: Callable[[int, int], np.ndarray]
    dim: int
    description: str
    #: Figure 4(a-c): minpts sweep — fixed eps, n = 16,384.
    minpts_sweep_eps: float | None = None
    minpts_sweep_values: tuple[int, ...] = ()
    #: Figure 4(d-f): eps sweep — fixed minpts, n = 16,384.
    eps_sweep_minpts: int | None = None
    eps_sweep_values: tuple[float, ...] = ()
    #: Figure 4(g-i): size sweep — fixed (minpts, eps).
    size_sweep_params: tuple[int, float] | None = None


#: The paper's sweep settings (Section 5.1: eps = 0.005 / 0.01 / 0.08 for
#: the minpts sweeps; minpts = 500 / 50 / 100 for the eps sweeps;
#: (minpts, eps) = (500, 0.0025) / (1000, 0.05) / (100, 0.01) for the size
#: sweeps; Section 5.2: eps = 0.042 for cosmology).
DATASETS: dict[str, DatasetSpec] = {
    "ngsim": DatasetSpec(
        name="ngsim",
        generator=ngsim_trajectories,
        dim=2,
        description="Vehicle trajectories on three highway corridors (NGSIM stand-in)",
        minpts_sweep_eps=0.005,
        minpts_sweep_values=(100, 200, 300, 400, 500),
        eps_sweep_minpts=500,
        eps_sweep_values=(0.0025, 0.005, 0.01, 0.02, 0.04),
        size_sweep_params=(500, 0.0025),
    ),
    "portotaxi": DatasetSpec(
        name="portotaxi",
        generator=portotaxi_traces,
        dim=2,
        description="Taxi GPS traces over a city street grid (PortoTaxi stand-in)",
        minpts_sweep_eps=0.01,
        minpts_sweep_values=(10, 20, 50, 100, 200),
        eps_sweep_minpts=50,
        eps_sweep_values=(0.005, 0.01, 0.02, 0.04, 0.08),
        size_sweep_params=(1000, 0.05),
    ),
    "road3d": DatasetSpec(
        name="road3d",
        generator=road_network_3d,
        dim=2,
        description="Province-scale road network, lon/lat (3D Road stand-in)",
        minpts_sweep_eps=0.08,
        minpts_sweep_values=(10, 20, 50, 100, 200),
        eps_sweep_minpts=100,
        eps_sweep_values=(0.01, 0.02, 0.04, 0.08, 0.16),
        size_sweep_params=(100, 0.01),
    ),
    "hacc": DatasetSpec(
        name="hacc",
        generator=hacc_cosmology,
        dim=3,
        description="3-D cosmology particle snapshot with halos (HACC stand-in)",
        minpts_sweep_eps=0.042,
        minpts_sweep_values=(2, 5, 10, 50, 100, 300),
        eps_sweep_minpts=2,
        eps_sweep_values=(0.042, 0.1, 0.25, 0.5, 1.0),
    ),
}


def load_dataset(name: str, n: int, seed: int = 0) -> np.ndarray:
    """Generate ``n`` points of the named dataset stand-in."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    return spec.generator(n, seed)


def paper_params(name: str) -> DatasetSpec:
    """The registered spec (sweep settings) for a dataset."""
    try:
        return DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
