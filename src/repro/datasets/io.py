"""Point-set IO and sampling utilities.

The paper's 2-D comparisons are "performed using a random subsampling of
the datasets in order to accommodate memory requirements exhibited by
certain codes" — :func:`subsample` is that operation, seeded and without
replacement.  The loaders/savers cover the formats a downstream user is
likely to hold trajectory or particle data in: ``.npy``, ``.csv``/``.txt``
(one point per row) and raw little-endian float binary (the HACC-style
layout: ``n * d`` float32/float64 values).
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.validation import validate_points


def subsample(X: np.ndarray, n: int, seed: int = 0) -> np.ndarray:
    """Draw ``n`` points without replacement (the paper's sampling step).

    ``n`` larger than the dataset raises — silently clipping a benchmark's
    sample size falsifies its x-axis.
    """
    X = np.asarray(X)
    if n <= 0:
        raise ValueError(f"sample size must be positive; got {n}")
    if n > X.shape[0]:
        raise ValueError(f"cannot draw {n} points from {X.shape[0]}")
    rng = np.random.default_rng(seed)
    return X[rng.choice(X.shape[0], size=n, replace=False)]


def save_points(path: str, X: np.ndarray) -> None:
    """Save a point set; the format follows the file extension
    (``.npy``, ``.csv``, ``.txt``, or ``.bin`` raw float64)."""
    X = validate_points(X, max_dim=None)
    ext = os.path.splitext(path)[1].lower()
    if ext == ".npy":
        np.save(path, X)
    elif ext in (".csv", ".txt"):
        np.savetxt(path, X, delimiter=",")
    elif ext == ".bin":
        X.astype(np.float64).tofile(path)
    else:
        raise ValueError(f"unsupported extension {ext!r} (use .npy/.csv/.txt/.bin)")


def load_points(path: str, dim: int | None = None, dtype=np.float64) -> np.ndarray:
    """Load a point set saved by :func:`save_points` (or compatible files).

    ``.bin`` files are a flat stream of ``dtype`` values and need ``dim``
    to recover the row shape; the others are self-describing.
    """
    ext = os.path.splitext(path)[1].lower()
    if ext == ".npy":
        X = np.load(path)
    elif ext in (".csv", ".txt"):
        X = np.loadtxt(path, delimiter=",", ndmin=2)
    elif ext == ".bin":
        if dim is None:
            raise ValueError("raw .bin files need dim= to recover the row shape")
        flat = np.fromfile(path, dtype=dtype)
        if flat.size % dim:
            raise ValueError(
                f"file holds {flat.size} values, not divisible by dim={dim}"
            )
        X = flat.reshape(-1, dim)
    else:
        raise ValueError(f"unsupported extension {ext!r} (use .npy/.csv/.txt/.bin)")
    return validate_points(np.asarray(X, dtype=np.float64), max_dim=None)
