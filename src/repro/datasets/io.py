"""Point-set IO and sampling utilities.

The paper's 2-D comparisons are "performed using a random subsampling of
the datasets in order to accommodate memory requirements exhibited by
certain codes" — :func:`subsample` is that operation, seeded and without
replacement.  The loaders/savers cover the formats a downstream user is
likely to hold trajectory or particle data in: ``.npy``, ``.csv``/``.txt``
(one point per row) and raw little-endian float binary (the HACC-style
layout: ``n * d`` float32/float64 values).

Loading is hardened for service use:

- a truncated or otherwise unparsable file raises
  :class:`CorruptPointFileError` naming the file and what was wrong with
  it — not a bare numpy shape traceback;
- transient read errors (``OSError``/``IOError`` — NFS hiccups, racing
  writers) are retried with the bounded backoff of a
  :class:`~repro.faults.RetryPolicy` before giving up; pass
  ``retry_policy=None`` semantics via ``max_attempts=1`` to disable.
  A missing file is *not* transient: ``FileNotFoundError`` propagates
  immediately, unretried.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.validation import validate_points
from repro.faults.retry import RetryPolicy, TransientFault, call_with_retries


class PointFileError(ValueError):
    """A point file could not be loaded; ``path`` names the file."""

    def __init__(self, path: str, message: str):
        super().__init__(f"{path}: {message}")
        self.path = path


class CorruptPointFileError(PointFileError):
    """The file exists but its contents are truncated or malformed."""


class TransientReadError(TransientFault):
    """A retryable IO failure while reading a point file."""


#: Default retry policy for :func:`load_points`: a few quick attempts
#: over transient IO errors only — corrupt contents never retry.
DEFAULT_READ_RETRIES = RetryPolicy(
    max_attempts=3,
    backoff_base=0.05,
    transient=(TransientReadError,),
)


def subsample(X: np.ndarray, n: int, seed: int = 0) -> np.ndarray:
    """Draw ``n`` points without replacement (the paper's sampling step).

    ``n`` larger than the dataset raises — silently clipping a benchmark's
    sample size falsifies its x-axis.
    """
    X = np.asarray(X)
    if n <= 0:
        raise ValueError(f"sample size must be positive; got {n}")
    if n > X.shape[0]:
        raise ValueError(f"cannot draw {n} points from {X.shape[0]}")
    rng = np.random.default_rng(seed)
    return X[rng.choice(X.shape[0], size=n, replace=False)]


def save_points(path: str, X: np.ndarray) -> None:
    """Save a point set; the format follows the file extension
    (``.npy``, ``.csv``, ``.txt``, or ``.bin`` raw float64)."""
    X = validate_points(X, max_dim=None)
    ext = os.path.splitext(path)[1].lower()
    if ext == ".npy":
        np.save(path, X)
    elif ext in (".csv", ".txt"):
        np.savetxt(path, X, delimiter=",")
    elif ext == ".bin":
        X.astype(np.float64).tofile(path)
    else:
        raise ValueError(f"unsupported extension {ext!r} (use .npy/.csv/.txt/.bin)")


def _read_raw(path: str, ext: str, dim: int | None, dtype) -> np.ndarray:
    """One read attempt: parse errors become :class:`CorruptPointFileError`,
    IO errors become retryable :class:`TransientReadError`."""
    try:
        if ext == ".npy":
            return np.load(path)
        if ext in (".csv", ".txt"):
            return np.loadtxt(path, delimiter=",", ndmin=2)
        # raw .bin
        flat = np.fromfile(path, dtype=dtype)
        if flat.size % dim:
            raise CorruptPointFileError(
                path,
                f"holds {flat.size} {np.dtype(dtype).name} values, not "
                f"divisible by dim={dim} — truncated write or wrong --dim?",
            )
        return flat.reshape(-1, dim)
    except CorruptPointFileError:
        raise
    except FileNotFoundError:
        raise
    except (OSError, IOError) as exc:
        raise TransientReadError(f"{path}: {exc}") from exc
    except ValueError as exc:
        # numpy's parse failures: a truncated .npy header, a ragged or
        # non-numeric CSV row... the file is there but not a point set.
        raise CorruptPointFileError(path, f"unreadable contents ({exc})") from exc


def load_points(
    path: str,
    dim: int | None = None,
    dtype=np.float64,
    retry_policy: RetryPolicy | None = None,
    clock=None,
) -> np.ndarray:
    """Load a point set saved by :func:`save_points` (or compatible files).

    ``.bin`` files are a flat stream of ``dtype`` values and need ``dim``
    to recover the row shape; the others are self-describing.

    Transient IO errors are retried per ``retry_policy`` (default
    :data:`DEFAULT_READ_RETRIES`; backoff sleeps on ``clock`` when one is
    given, e.g. a :class:`~repro.faults.SimClock` in tests).  Corrupt or
    truncated files raise :class:`CorruptPointFileError` immediately —
    rereading bad bytes does not help.
    """
    ext = os.path.splitext(path)[1].lower()
    if ext not in (".npy", ".csv", ".txt", ".bin"):
        raise ValueError(f"unsupported extension {ext!r} (use .npy/.csv/.txt/.bin)")
    if ext == ".bin" and dim is None:
        raise ValueError("raw .bin files need dim= to recover the row shape")
    policy = retry_policy if retry_policy is not None else DEFAULT_READ_RETRIES
    X, _attempts = call_with_retries(
        lambda attempt: _read_raw(path, ext, dim, dtype), policy, clock=clock
    )
    try:
        return validate_points(np.asarray(X, dtype=np.float64), max_dim=None)
    except ValueError as exc:
        raise CorruptPointFileError(path, str(exc)) from exc
