"""PortoTaxi stand-in: taxi GPS traces over a city street network.

The real dataset holds 81M+ GPS points from several hundred taxis in
Porto: positions quantised to the street network, a very dense urban
core, thinning suburbs, and heavy accumulations where taxis idle (taxi
stands, the airport, the station).  Properties the figures rely on:

- with (eps = 0.01, minpts = 50) and 16k samples, ~90 % of the points
  land in dense grid cells (the paper reports >95 % across its datasets);
- growing eps inflates the eps-graph enough that G-DBSCAN slows down
  (Figure 4(e)) and runs out of memory at the largest sample sizes
  (Figure 4(h)).

The generator mixes two taxi behaviours over a Manhattan-style street
grid spanning ~0.25 degrees: *moving* taxis sampled on streets with a
radial intensity peaking downtown, and *idling* taxis piled up at a dozen
stands near the centre — the idling mass is what drives the heavy
per-cell occupancies of the real data.
"""

from __future__ import annotations

import numpy as np

_CITY_EXTENT = 0.25  # degree-like units
_STREET_SPACING = 0.01
_GPS_JITTER = 4.5e-4
_CORE_SCALE = 0.015  # radial decay of taxi intensity from downtown
_N_STANDS = 12
_STAND_FRACTION = 0.65
_STAND_JITTER = 6e-4


def portotaxi_traces(n: int, seed: int = 0) -> np.ndarray:
    """Generate ``n`` 2-D taxi GPS points over the synthetic street grid."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    center = _CITY_EXTENT / 2
    snap = lambda v: np.round(v / _STREET_SPACING) * _STREET_SPACING  # noqa: E731

    n_stand = int(n * _STAND_FRACTION)
    n_move = n - n_stand

    # Moving taxis: radius ~ exponential from downtown, angle uniform,
    # one coordinate snapped to the street grid (half NS, half EW streets).
    radius = rng.exponential(_CORE_SCALE, size=n_move)
    theta = rng.uniform(0, 2 * np.pi, size=n_move)
    x = np.clip(center + radius * np.cos(theta), 0, _CITY_EXTENT)
    y = np.clip(center + radius * np.sin(theta), 0, _CITY_EXTENT)
    on_ns_street = rng.random(n_move) < 0.5
    x = np.where(on_ns_street, snap(x), x)
    y = np.where(on_ns_street, y, snap(y))
    moving = np.column_stack([x, y]) + rng.normal(0, _GPS_JITTER, size=(n_move, 2))

    # Idling taxis: a dozen stands at street corners near the centre.
    sr = rng.exponential(0.8 * _CORE_SCALE, size=_N_STANDS)
    st = rng.uniform(0, 2 * np.pi, size=_N_STANDS)
    stand_pos = np.column_stack(
        [
            snap(np.clip(center + sr * np.cos(st), 0, _CITY_EXTENT)),
            snap(np.clip(center + sr * np.sin(st), 0, _CITY_EXTENT)),
        ]
    )
    pick = rng.integers(0, _N_STANDS, size=n_stand)
    idling = stand_pos[pick] + rng.normal(0, _STAND_JITTER, size=(n_stand, 2))

    pts = np.concatenate([moving, idling], axis=0)
    return pts[rng.permutation(n)]
