"""Textbook sequential union-find (union by size, full path compression).

This is the differential-testing oracle for :mod:`repro.unionfind.ecl`:
both structures must induce identical partitions for any edge sequence.
It is also what the CUDA-DClust baseline's host-side collision resolution
uses, matching that algorithm's CPU final stage.
"""

from __future__ import annotations

import numpy as np


class SequentialUnionFind:
    """Classic disjoint-set forest over ``n`` elements."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"negative element count: {n}")
        self._parent = list(range(n))
        self._size = [1] * n

    @property
    def n(self) -> int:
        return len(self._parent)

    def find(self, x: int) -> int:
        """Representative of ``x`` (with full path compression)."""
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; returns ``True`` if they were
        previously distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are currently in the same set."""
        return self.find(a) == self.find(b)

    def labels(self) -> np.ndarray:
        """Flat representative array (the analogue of ECL finalisation)."""
        return np.array([self.find(x) for x in range(self.n)], dtype=np.int64)

    def n_sets(self) -> int:
        """Number of disjoint sets."""
        return len({self.find(x) for x in range(self.n)})
