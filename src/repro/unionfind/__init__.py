"""Disjoint-set (union-find) structures.

The paper adopts the synchronisation-free union-find of Jaiganesh &
Burtscher's ECL-CC (HPDC'18): a flat ``labels`` array encodes the forest,
``find`` uses *intermediate pointer jumping* (every visited element is
re-pointed to its grandparent, halving path lengths), hooking always
attaches the larger root under the smaller, and — because intermediate
jumping does not guarantee fully compressed paths — a *finalisation*
kernel flattens every label to its representative at the end of the main
phase (Section 4, first paragraph).

``ecl``
    The batched, vectorised reproduction used by all framework algorithms.

``sequential``
    Textbook union-by-size with full path compression; the differential-
    testing oracle.
"""

from repro.unionfind.ecl import EclUnionFind, find_roots, finalize_labels, union_batch
from repro.unionfind.sequential import SequentialUnionFind

__all__ = [
    "EclUnionFind",
    "SequentialUnionFind",
    "find_roots",
    "finalize_labels",
    "union_batch",
]
