"""ECL-style synchronisation-free union-find, batched and vectorised.

The device-side structure is a single int64 ``parents`` array: element
``x`` is a root iff ``parents[x] == x``.  The three kernels the paper uses
(Section 4) appear here as:

:func:`find_roots`
    Vectorised *intermediate pointer jumping*: while following parent
    pointers, every element on the path is re-pointed to its grandparent
    (``parents[v] = parents[parents[v]]``), halving path lengths per sweep
    — Jaiganesh & Burtscher's middle ground between no compression and
    full compression, chosen because it needs no extra passes or atomics.

:func:`union_batch`
    Processes a whole batch of edges at once, mirroring the lock-free
    hooking race: each edge finds its two roots and the *larger root is
    hooked under the smaller*.  When several edges race to hook the same
    root in one sweep, ``atomicMin`` semantics (``np.minimum.at``) pick the
    smallest candidate parent — the same resolution concurrent atomicMin
    hooking converges to.  Sweeps repeat until every edge's endpoints share
    a root; hook-to-smaller guarantees monotone progress, so at most
    ``O(log n)`` sweeps are needed.

:func:`finalize_labels`
    The paper's finalisation kernel: intermediate jumping does not leave
    every path fully compressed at the end of the main phase, so one last
    pass points every element directly at its representative.

:class:`EclUnionFind` wraps the three kernels with device accounting.
"""

from __future__ import annotations

import numpy as np

from repro.device.counters import KernelCounters
from repro.device.device import Device, default_device


def find_roots(
    parents: np.ndarray,
    queries: np.ndarray,
    counters: KernelCounters | None = None,
    compress: bool = True,
) -> np.ndarray:
    """Root of each query element, with intermediate pointer jumping.

    ``parents`` is mutated (paths shorten) when ``compress`` is true; the
    forest's set structure is never changed, only flattened.
    """
    queries = np.asarray(queries, dtype=np.int64)
    current = parents[queries]
    steps = 0
    while True:
        nxt = parents[current]
        steps += 1
        moving = nxt != current
        if not moving.any():
            break
        if compress:
            # Intermediate jumping: skip the visited element over its
            # parent.  np.minimum.at resolves concurrent writes to one
            # element the way racing device stores do — any of the written
            # values is a valid grandparent; minimum keeps it deterministic
            # and monotone (parents only ever decrease toward roots,
            # because hooking attaches larger roots under smaller ones).
            np.minimum.at(parents, current[moving], parents[nxt[moving]])
        current = np.where(moving, nxt, current)
    if counters is not None:
        counters.add("find_steps", steps)
    return current


def union_batch(
    parents: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    counters: KernelCounters | None = None,
) -> int:
    """Union the sets of ``a[k]`` and ``b[k]`` for every edge ``k``.

    Returns the number of hooking sweeps.  Equal-endpoint and repeated
    edges are harmless (union is idempotent).
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape:
        raise ValueError(f"edge arrays differ in shape: {a.shape} vs {b.shape}")
    if counters is not None:
        counters.add("union_ops", a.shape[0])
    sweeps = 0
    while a.size:
        sweeps += 1
        ra = find_roots(parents, a, counters)
        rb = find_roots(parents, b, counters)
        unresolved = ra != rb
        if not unresolved.any():
            break
        a = a[unresolved]
        b = b[unresolved]
        hi = np.maximum(ra[unresolved], rb[unresolved])
        lo = np.minimum(ra[unresolved], rb[unresolved])
        # Lock-free hooking: larger root under smaller; concurrent hooks of
        # the same root resolve to the smallest candidate (atomicMin).
        np.minimum.at(parents, hi, lo)
    return sweeps


def finalize_labels(
    parents: np.ndarray, counters: KernelCounters | None = None
) -> np.ndarray:
    """Flatten every element's label to its representative, in place.

    After this kernel ``parents[x] == parents[parents[x]]`` for all ``x`` —
    the invariant the paper's finalisation phase establishes so cluster
    labels can be read off directly.  Returns ``parents``.
    """
    n = parents.shape[0]
    idx = np.arange(n, dtype=np.int64)
    roots = find_roots(parents, idx, counters)
    parents[:] = roots
    return parents


class EclUnionFind:
    """Device-accounted wrapper around the batched union-find kernels.

    Parameters
    ----------
    n:
        Element count; the structure starts as ``n`` singleton sets
        (``parents[x] = x``), the "forest of singleton non-overlapping
        trees" of Section 3.1.
    device:
        Accounting device; the parents array is charged to the
        ``"labels"`` tag (the paper stores cluster labels in this array).
    """

    def __init__(self, n: int, device: Device | None = None):
        if n < 0:
            raise ValueError(f"negative element count: {n}")
        self.device = default_device(device)
        self.parents = np.arange(n, dtype=np.int64)
        self.device.memory.allocate(self.parents.nbytes, tag="labels")

    @property
    def n(self) -> int:
        return self.parents.shape[0]

    def find(self, queries: np.ndarray) -> np.ndarray:
        """Representatives of the queried elements (with path shortening)."""
        return find_roots(self.parents, queries, self.device.counters)

    def union(self, a: np.ndarray, b: np.ndarray) -> None:
        """Union the sets of the edge endpoints ``(a[k], b[k])``."""
        union_batch(self.parents, a, b, self.device.counters)

    def finalize(self) -> np.ndarray:
        """Run the finalisation kernel; returns the flat labels array."""
        with self.device.kernel("uf_finalize", threads=self.n) as launch:
            finalize_labels(self.parents, self.device.counters)
            launch.steps = 1
        return self.parents

    def n_sets(self) -> int:
        """Number of disjoint sets currently represented."""
        return int(np.count_nonzero(self.parents == np.arange(self.n)))
