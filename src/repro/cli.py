"""Command-line interface: ``python -m repro``.

Four subcommands:

``cluster``
    Cluster a point file (``.npy``/``.csv``/``.txt``/``.bin``) or a named
    synthetic dataset, print the run summary (and optionally the work
    counters), and write labels to a file.

``bench``
    Run one figure-style sweep from the command line without pytest —
    handy for quick regressions on one machine.

``metrics``
    Run one clustering and print its metrics — device work counters,
    per-kernel seconds, comm/fault totals — as Prometheus text
    exposition (or CSV), fed from the same accounting objects the
    benchmarks report.

``serve``
    Run the resilient clustering service (``repro.service``): a
    newline-JSON request loop on stdin (or HTTP with ``--http PORT``),
    with per-request deadlines, admission control, circuit breakers and
    a crash-safe mutation journal.  ``--traffic N`` runs the seeded
    synthetic traffic generator instead and prints the latency report.

``bench`` and ``metrics`` exit non-zero when any cell finishes with
status ``error``/``oom``/``timeout``, unless ``--allow-failures`` is
passed — CI cannot silently pass on broken cells.

Every subcommand accepts ``--trace-out TRACE.json`` (with
``--trace-format chrome|csv``) to record the run as one trace tree —
device kernels, comm transfers, distributed phases and benchmark cells
on a shared timeline — loadable in Perfetto / ``chrome://tracing``.

Examples
--------
::

    python -m repro cluster --dataset hacc --n 50000 --eps 0.042 --minpts 2
    python -m repro cluster points.csv --eps 0.01 --minpts 50 \
        --algorithm fdbscan-densebox --labels-out labels.npy --counters
    python -m repro bench --dataset portotaxi --n 8192 --eps 0.01 \
        --minpts-sweep 10,20,50 --algorithms fdbscan,densebox
    python -m repro bench --dataset ngsim --n 4096 --eps 0.02 \
        --faults 0.1 --ranks 4 --algorithms fdbscan,distributed \
        --trace-out trace.json
    python -m repro metrics --dataset ngsim --n 2048 --eps 0.02 --minpts 5
    python -m repro serve --journal service.jsonl
    python -m repro serve --traffic 200 --faults 0.1 --save report.json
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.bench.harness import run_sweep
from repro.bench.report import (
    format_fault_summary,
    format_kernel_profile,
    format_records,
    format_series,
    merge_kernel_profiles,
)
from repro.core.api import dbscan
from repro.datasets.io import load_points, subsample
from repro.datasets.registry import DATASETS, load_dataset
from repro.device.device import Device, KernelFaultError
from repro.device.memory import DeviceMemoryError
from repro.faults import DeadlineExceededError, FaultPlan, FaultSpec, RetryPolicy
from repro.metrics.stats import clustering_summary, hierarchy_summary
from repro.obs import (
    MetricsRegistry,
    Tracer,
    format_cost_model,
    record_comm_stats,
    record_fault_summary,
    record_kernel_counters,
    record_kernel_profile,
    record_run_records,
    record_trace_health,
    write_trace,
)


def _fault_machinery(args) -> tuple[FaultPlan | None, RetryPolicy | None]:
    """Build the (fault plan, retry policy) pair from CLI flags."""
    plan = None
    if args.faults:
        plan = FaultPlan(seed=args.fault_seed, spec=FaultSpec.parse(args.faults))
    policy = None
    if args.retries is not None:
        if args.retries < 0:
            raise SystemExit(f"--retries must be >= 0; got {args.retries}")
        policy = RetryPolicy(max_attempts=args.retries + 1)
    return plan, policy


def _tracer_for(args) -> Tracer | None:
    """A :class:`Tracer` when ``--trace-out`` asks for one, else None."""
    return Tracer() if getattr(args, "trace_out", None) else None


def _write_trace(args, tracer: Tracer | None) -> dict | None:
    """Export the tracer to ``--trace-out`` and describe what was written."""
    if tracer is None:
        return None
    write_trace(args.trace_out, tracer, fmt=args.trace_format)
    meta = {
        "path": args.trace_out,
        "format": args.trace_format,
        "trace_id": tracer.trace_id,
        "spans": len(tracer.spans),
        "dropped_spans": tracer.dropped,
    }
    print(
        f"trace written to {args.trace_out} "
        f"({args.trace_format}, {meta['spans']} spans"
        + (f", {meta['dropped_spans']} dropped" if meta["dropped_spans"] else "")
        + ")"
    )
    return meta


def _load_input(args) -> np.ndarray:
    if args.dataset:
        return load_dataset(args.dataset, args.n, seed=args.seed)
    if not args.input:
        raise SystemExit("either an input file or --dataset is required")
    X = load_points(args.input, dim=args.dim)
    if args.n and args.n < X.shape[0]:
        X = subsample(X, args.n, seed=args.seed)
    return X


#: Single-device algorithms that accept the traversal options
#: (``query_order=`` / ``traversal=``); baselines take neither.
_TREE_ALGORITHMS = {"auto", "fdbscan", "fdbscan-densebox", "densebox"}


def _traversal_kwargs(args) -> dict:
    """Non-default ``query_order``/``traversal`` kwargs from CLI flags."""
    kwargs = {}
    if getattr(args, "query_order", "input") != "input":
        kwargs["query_order"] = args.query_order
    if getattr(args, "traversal", "single") != "single":
        kwargs["traversal"] = args.traversal
    return kwargs


def _apply_backend(args, device: Device) -> None:
    """Attach the ``--backend`` execution backend to the run's device.

    The tree traversals (and the distributed driver) consult
    ``device.backend`` when no explicit backend is passed, so setting it
    here routes every eligible kernel of the run — labels and work
    counters are bit-identical to serial either way."""
    if getattr(args, "backend", "serial") != "serial":
        from repro.device.backends import coerce_backend

        device.backend = coerce_backend(args.backend, workers=args.workers)


def _cluster_run(args, device: Device, tracer: Tracer | None):
    """Run the cluster/metrics subcommands' single clustering."""
    X = _load_input(args)
    plan, policy = _fault_machinery(args)
    trav_kwargs = _traversal_kwargs(args)
    if args.eps is None and (args.ranks or args.algorithm.lower() != "hdbscan"):
        raise SystemExit(
            "--eps is required (only --algorithm hdbscan runs without it)"
        )
    if args.ranks:
        from repro.distributed import distributed_dbscan

        result = distributed_dbscan(
            X, args.eps, args.minpts, n_ranks=args.ranks, device=device,
            fault_plan=plan, retry_policy=policy, tracer=tracer, **trav_kwargs,
        )
    elif plan is not None:
        raise SystemExit("--faults requires --ranks (faults are injected into "
                         "the distributed driver); use bench --faults for cells")
    elif args.algorithm.lower() == "hdbscan":
        from repro.hierarchy import hdbscan

        if tracer is not None:
            device.tracer = tracer
        result = hdbscan(
            X,
            min_cluster_size=getattr(args, "min_cluster_size", None) or max(2, args.minpts),
            min_samples=args.minpts,
            device=device,
            mst_algorithm=getattr(args, "mst", "boruvka"),
            **trav_kwargs,
        )
    else:
        if trav_kwargs and args.algorithm.lower() not in _TREE_ALGORITHMS:
            raise SystemExit(
                f"--query-order/--traversal only apply to the tree algorithms "
                f"({', '.join(sorted(_TREE_ALGORITHMS))}, hdbscan) or --ranks "
                f"runs; got --algorithm {args.algorithm}"
            )
        if tracer is not None:
            device.tracer = tracer
        result = dbscan(
            X, args.eps, args.minpts, algorithm=args.algorithm, device=device,
            **trav_kwargs,
        )
    return result


def _cmd_cluster(args) -> int:
    device = Device(capacity_bytes=args.memory_cap)
    _apply_backend(args, device)
    tracer = _tracer_for(args)
    result = _cluster_run(args, device, tracer)
    print(f"algorithm : {result.info.get('algorithm', args.algorithm)}")
    if result.info.get("algorithm") == "hdbscan":
        summary = hierarchy_summary(result)
        summary["mst_algorithm"] = result.info["mst_algorithm"]
    else:
        summary = clustering_summary(result)
    for key, value in summary.items():
        print(f"{key:>18} : {value}")
    if args.ranks:
        print(f"{'alive_ranks':>18} : {result.info['alive_ranks']}")
        print(format_fault_summary(result.info))
    if "dense_fraction" in result.info:
        print(f"{'dense_fraction':>18} : {result.info['dense_fraction']:.1%}")
    if args.counters:
        print("-- device counters --")
        for key, value in sorted(device.counters.snapshot().items()):
            if isinstance(value, int) and value:
                print(f"{key:>18} : {value:,}")
        print(f"{'peak_bytes':>18} : {device.memory.peak_bytes:,}")
    if args.profile:
        print(format_kernel_profile(device.profile(), title="-- kernel profile --"))
    if args.cost_model:
        print(format_cost_model(device.profile()))
    if args.labels_out:
        np.save(args.labels_out, result.labels)
        print(f"labels written to {args.labels_out}")
    _write_trace(args, tracer)
    return 0


def _cmd_metrics(args) -> int:
    """Run one clustering and print its metrics exposition."""
    device = Device(capacity_bytes=args.memory_cap)
    _apply_backend(args, device)
    tracer = _tracer_for(args)
    failure = None
    result = None
    try:
        result = _cluster_run(args, device, tracer)
    except (KernelFaultError, DeviceMemoryError, DeadlineExceededError) as exc:
        # Still expose the partial counters — a broken run's metrics are
        # exactly what the investigation needs — but don't exit clean.
        failure = f"{type(exc).__name__}: {exc}"
    registry = MetricsRegistry()
    record_kernel_counters(registry, device.counters.snapshot())
    record_kernel_profile(registry, device.profile())
    record_trace_health(registry, tracer=tracer, devices=(device,))
    if args.ranks and result is not None:
        record_comm_stats(registry, result.info.get("comm", {}))
        if result.info.get("faults"):
            record_fault_summary(registry, result.info["faults"])
    output = registry.to_csv() if args.format == "csv" else registry.to_prometheus()
    print(output, end="" if output.endswith("\n") else "\n")
    _write_trace(args, tracer)
    if failure is not None:
        print(f"run failed: {failure}", file=sys.stderr)
        if not args.allow_failures:
            return 1
        print("continuing despite failure (--allow-failures)", file=sys.stderr)
    return 0


def _cmd_bench(args) -> int:
    if args.eps is None and not args.eps_sweep:
        raise SystemExit("bench requires --eps (or --eps-sweep)")
    X = _load_input(args)
    algorithms = args.algorithms.split(",")
    if args.minpts_sweep:
        values = [int(v) for v in args.minpts_sweep.split(",")]
        cells = [{"eps": args.eps, "min_samples": v} for v in values]
        x_key = "min_samples"
    elif args.eps_sweep:
        values = [float(v) for v in args.eps_sweep.split(",")]
        cells = [{"eps": v, "min_samples": args.minpts} for v in values]
        x_key = "eps"
    else:
        cells = [{"eps": args.eps, "min_samples": args.minpts}]
        x_key = "min_samples"
    plan, policy = _fault_machinery(args)
    tracer = _tracer_for(args)
    tree_kwargs = {}
    if args.query_order != "input":
        tree_kwargs["query_order"] = args.query_order
    # "both" sweeps the single engine, then dual, then auto over the same
    # cells — the records stay distinguishable by their ``traversal``
    # field, so the history diff can gate on the dual engine's pruning and
    # the smoke gate can price auto's regret against min(single, dual).
    # ``--backend both`` nests the same way: every (engine, cell) pair runs
    # once per backend into one history, keyed apart by ``backend``, which
    # is what the A/B speedup report pairs back up.
    modes = (
        ("single", "dual", "auto")
        if args.traversal == "both"
        else (args.traversal,)
    )
    backends = (
        ("serial", "process") if args.backend == "both" else (args.backend,)
    )
    records = []
    for mode in modes:
        for bk in backends:
            records += run_sweep(
                algorithms,
                cells,
                lambda cell: X,
                dataset=args.dataset or args.input,
                time_budget=args.time_budget,
                time_budget_mode=args.time_budget_mode,
                capacity_bytes=args.memory_cap,
                tree_kwargs=tree_kwargs or None,
                reuse_index=not args.no_reuse_index,
                retry_policy=policy,
                fault_plan=plan,
                tracer=tracer,
                traversal=mode,
                backend=bk,
                workers=args.workers,
                cell_timeout=args.cell_timeout,
                n_ranks=args.ranks or 4,
            )
    print(format_series(records, x_key=x_key, title="seconds"))
    print()
    print(format_records(records))
    print()
    print(format_kernel_profile(records, title="-- kernel profile (all cells) --"))
    ab_mismatch = False
    if args.backend == "both":
        from repro.bench.report import format_backend_ab

        # strict=False so the table always prints; the mismatch still
        # fails the command below — a counter divergence between the
        # backends is a correctness alarm, not a benchmark blemish.
        ab_text = format_backend_ab(records, strict=False)
        print()
        print(ab_text)
        ab_mismatch = "MISMATCH" in ab_text
    dropped = sum(r.trace_dropped for r in records)
    if dropped:
        affected = sum(1 for r in records if r.trace_dropped)
        print(
            f"warning: {dropped} kernel launches evicted from the bounded span "
            f"ring across {affected} cell(s) — profiles/traces are incomplete; "
            f"raise the device's span-ring capacity for full traces"
        )
    if args.cost_model:
        print()
        print(format_cost_model(merge_kernel_profiles(records)))
    if args.fit_cost_model:
        from repro.obs.fit import fit_from_records, format_fit_summary

        model = fit_from_records(records)
        model.save(args.fit_cost_model)
        print()
        print(format_fit_summary(model))
        # A freshly fitted model must be drift-free against its own
        # sources — the calibration guarantees it; anything else is a bug.
        self_drift = model.drift(merge_kernel_profiles(records))
        if self_drift["alarms"]:
            print(f"warning: self-drift alarms on fresh fit: {self_drift['alarms']}",
                  file=sys.stderr)
        print(f"cost model written to {args.fit_cost_model}")
    trace_meta = _write_trace(args, tracer)
    if args.save:
        from repro.bench.history import save_records

        # the argv main() actually parsed — replayable by bench.smoke even
        # when main() is invoked programmatically (sys.argv would lie then)
        meta = {"argv": getattr(args, "argv", sys.argv[1:])}
        if trace_meta is not None:
            meta["trace"] = trace_meta
        save_records(args.save, records, meta=meta)
        print(f"records written to {args.save}")
    if args.compare:
        from repro.bench.history import compare_records, load_records

        baseline, _ = load_records(args.compare)
        report = compare_records(baseline, records)
        print("-- comparison vs", args.compare, "--")
        for kind in (
            "regressions",
            "improvements",
            "rate_regressions",
            "rate_improvements",
            "status_changes",
            "result_changes",
        ):
            for entry in report[kind]:
                print(f"  {kind[:-1]}: {entry}")
        alarm_kinds = (
            "regressions", "rate_regressions", "status_changes", "result_changes"
        )
        if not any(report[k] for k in alarm_kinds):
            print("  no regressions")
    failed = [r for r in records if r.status in ("error", "oom", "timeout")]
    if failed:
        for rec in failed:
            print(
                f"failed cell: {rec.algorithm} n={rec.n} eps={rec.eps:g} "
                f"minpts={rec.min_samples} [{rec.status}] {rec.detail}",
                file=sys.stderr,
            )
        if not args.allow_failures:
            return 1
        print("continuing despite failed cells (--allow-failures)", file=sys.stderr)
    if ab_mismatch:
        # Never excused by --allow-failures: unequal counters mean the
        # two backends computed different things.
        print("backend A/B counter mismatch (see report above)", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    from repro.service import ClusteringService, ServiceConfig
    from repro.service.traffic import run_traffic, save_traffic_report

    plan = None
    if args.faults:
        plan = FaultPlan(seed=args.fault_seed, spec=FaultSpec.parse(args.faults))
    cost_model = None
    if args.cost_model:
        from repro.obs.fit import FittedCostModel

        cost_model = FittedCostModel.load(args.cost_model)
        print(
            f"cost model {args.cost_model} "
            f"(source {cost_model.source_fingerprint[:12]}, "
            f"{len(cost_model.kernels)} kernels)",
            file=sys.stderr,
        )
    config = ServiceConfig(
        default_deadline_s=args.deadline,
        cost_model=cost_model,
        backend=args.backend,
        workers=args.workers,
    )

    if args.traffic:
        report = run_traffic(
            n_requests=args.traffic,
            seed=args.seed,
            plan=plan,
            journal_path=args.journal,
            config=config,
            event_log_path=args.event_log,
        )
        lat = report["latency_ms"]
        print(f"{'requests sent':>16} : {report['requests_sent']}")
        for status, count in sorted(report["by_status"].items()):
            print(f"{status:>16} : {count}")
        print(
            f"{'latency ms':>16} : p50={lat['p50']:.2f} p95={lat['p95']:.2f} "
            f"p99={lat['p99']:.2f} max={lat['max']:.2f}"
        )
        if report["shed_reasons"]:
            print(f"{'shed':>16} : {report['shed_reasons']}")
        if report["degraded_modes"]:
            print(f"{'degraded':>16} : {report['degraded_modes']}")
        if report["faults_applied"]:
            print(f"{'faults applied':>16} : {report['faults_applied']}")
        for restart in report["restarts"]:
            equal = "bit-equal" if restart["bit_equal"] else "MISMATCH"
            print(
                f"{'crash-restart':>16} : at request {restart['at_request']}, "
                f"{restart['replayed_entries']} entries replayed, "
                f"fingerprints {equal}"
            )
        print(f"{'metrics=ledger':>16} : {report['metrics_ledger']['ok']}")
        from repro.obs.slo import format_slo_report

        print(format_slo_report(report["slo"], title="-- slo --"))
        events = report["events"]
        print(
            f"{'events':>16} : {events['appended']} appended, "
            f"{events['retained']} retained, {events['dropped']} dropped"
            + (f" -> {events['path']}" if events.get("path") else "")
        )
        if args.save:
            save_traffic_report(report, args.save)
            print(f"report written to {args.save}")
        if any(not r["bit_equal"] for r in report["restarts"]):
            return 1
        return 0

    event_log = None
    if args.event_log:
        from repro.service.events import EventLog

        event_log = EventLog(path=args.event_log)
    service = ClusteringService(
        journal_path=args.journal, config=config, fault_plan=plan,
        event_log=event_log,
    )
    if service.replayed_entries:
        print(
            f"replayed {service.replayed_entries} journal entries "
            f"({len(service.indexes)} indexes)",
            file=sys.stderr,
        )
    if args.http:
        from repro.service.http import serve_http

        print(f"serving HTTP on 127.0.0.1:{args.http} (Ctrl-C to stop)", file=sys.stderr)
        serve_http(service, port=args.http)
        return 0
    served = service.serve_lines(sys.stdin, sys.stdout)
    print(f"served {served} requests", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tree-based DBSCAN (FDBSCAN / FDBSCAN-DenseBox) and baselines",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("input", nargs="?", help="point file (.npy/.csv/.txt/.bin)")
        p.add_argument(
            "--dataset",
            choices=sorted(DATASETS),
            help="generate a named synthetic dataset instead of reading a file",
        )
        p.add_argument("--n", type=int, default=10_000, help="points to generate/sample")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--dim", type=int, help="row width for raw .bin inputs")
        p.add_argument(
            "--eps", type=float, default=None,
            help="neighbourhood radius (required except for "
            "--algorithm hdbscan, which has no eps)",
        )
        p.add_argument(
            "--memory-cap", type=int, help="device memory cap in bytes (OOM simulation)"
        )
        p.add_argument(
            "--faults",
            help="fault-injection spec: a probability ('0.1') or key=value "
            "pairs ('drop=0.1,corrupt=0.05,crash=0.2,device=0.3,attempts=2')",
        )
        p.add_argument(
            "--fault-seed", type=int, default=0,
            help="seed for the deterministic fault plan (default 0)",
        )
        p.add_argument(
            "--retries", type=int, default=None,
            help="retry transient failures up to this many times "
            "(default: driver policy for --ranks runs, no retries for bench cells)",
        )
        p.add_argument(
            "--trace-out",
            help="record the run as one trace tree and write it to this file "
            "(Chrome trace-event JSON loads in Perfetto / chrome://tracing)",
        )
        p.add_argument(
            "--trace-format", choices=("chrome", "csv"), default="chrome",
            help="trace file format for --trace-out (default: chrome)",
        )

    def traversal_flags(p, both: bool = False):
        p.add_argument(
            "--query-order", choices=("input", "morton"), default="input",
            help="traversal query scheduling for the tree algorithms: chunk "
            "queries in input order or along the Morton curve (identical "
            "labels and work counters either way — an ablation lever)",
        )
        choices = (
            ("single", "dual", "auto", "both")
            if both
            else ("single", "dual", "auto")
        )
        p.add_argument(
            "--traversal", choices=choices, default="single",
            help="BVH traversal engine for the tree algorithms: 'single' "
            "keeps one frontier row per query, 'dual' prunes query-BVH "
            "groups against each node in one box test, 'auto' picks the "
            "engine per chunk from the fitted cost model (identical "
            "labels and distance counts in every mode)"
            + ("; 'both' runs the sweep once per engine, auto included"
               if both else ""),
        )

    def backend_flags(p, both: bool = False):
        choices = ("serial", "process", "both") if both else ("serial", "process")
        p.add_argument(
            "--backend", choices=choices, default="serial",
            help="execution backend for the tree traversals: 'serial' runs "
            "chunks in-process, 'process' fans them over shared-memory "
            "worker processes (identical labels and work counters); with "
            "--ranks, 'process' also runs each rank as a real OS process"
            + ("; 'both' runs the sweep once per backend and prints the "
               "A/B speedup report" if both else ""),
        )
        p.add_argument(
            "--workers", type=int, default=None,
            help="worker-process count for --backend process "
            "(default: the machine's CPU count)",
        )

    def cost_model_flag(p):
        p.add_argument(
            "--cost-model", action="store_true",
            help="print the per-kernel cost model (wall seconds joined with "
            "machine-independent work counters and their rates)",
        )

    def hierarchy_flags(p):
        p.add_argument(
            "--min-cluster-size", type=int, default=None,
            help="smallest condensed cluster for --algorithm hdbscan "
            "(default: max(2, minpts)); --eps is ignored by hdbscan",
        )
        p.add_argument(
            "--mst", choices=("boruvka", "prim"), default="boruvka",
            help="mutual-reachability MST engine for --algorithm hdbscan: "
            "'boruvka' streams through the BVH, 'prim' is the O(n²) "
            "reference (identical dendrogram heights)",
        )

    cluster = sub.add_parser("cluster", help="cluster a point set")
    common(cluster)
    cluster.add_argument("--minpts", type=int, required=True)
    cluster.add_argument("--algorithm", default="auto")
    hierarchy_flags(cluster)
    cluster.add_argument(
        "--ranks", type=int,
        help="run the distributed driver with this many simulated ranks",
    )
    cluster.add_argument("--labels-out", help="write labels to this .npy file")
    cluster.add_argument(
        "--counters", action="store_true", help="print device work counters"
    )
    cluster.add_argument(
        "--profile", action="store_true", help="print the per-kernel time breakdown"
    )
    traversal_flags(cluster)
    backend_flags(cluster)
    cost_model_flag(cluster)
    cluster.set_defaults(func=_cmd_cluster)

    metrics = sub.add_parser(
        "metrics",
        help="run one clustering and print its metrics exposition",
    )
    common(metrics)
    metrics.add_argument("--minpts", type=int, required=True)
    metrics.add_argument("--algorithm", default="auto")
    hierarchy_flags(metrics)
    metrics.add_argument(
        "--ranks", type=int,
        help="run the distributed driver with this many simulated ranks",
    )
    metrics.add_argument(
        "--format", choices=("prometheus", "csv"), default="prometheus",
        help="exposition format (default: prometheus text)",
    )
    metrics.add_argument(
        "--allow-failures", action="store_true",
        help="exit 0 even when the run fails (the partial metrics still print)",
    )
    traversal_flags(metrics)
    backend_flags(metrics)
    metrics.set_defaults(func=_cmd_metrics)

    bench = sub.add_parser("bench", help="run a parameter sweep")
    common(bench)
    bench.add_argument("--minpts", type=int, default=5)
    bench.add_argument("--minpts-sweep", help="comma-separated minpts values")
    bench.add_argument("--eps-sweep", help="comma-separated eps values")
    bench.add_argument(
        "--algorithms", default="fdbscan,fdbscan-densebox",
        help="comma-separated names (registry algorithms plus 'distributed' "
        "for the simulated multi-rank driver)",
    )
    bench.add_argument(
        "--ranks", type=int,
        help="simulated rank count for 'distributed' cells (default 4)",
    )
    bench.add_argument("--time-budget", type=float, help="per-cell seconds budget")
    bench.add_argument(
        "--time-budget-mode", choices=("wall", "cold"), default="wall",
        help="compare the budget against actual wall seconds, or against "
        "cold-equivalent seconds (wall + replayed index-build seconds)",
    )
    cost_model_flag(bench)
    traversal_flags(bench, both=True)
    backend_flags(bench, both=True)
    bench.add_argument(
        "--no-reuse-index",
        action="store_true",
        help="rebuild the spatial index cold in every cell (default: build once "
        "per point set and replay its cost)",
    )
    bench.add_argument(
        "--save",
        nargs="?",
        const="BENCH_sweep.json",
        help="write the records to this JSON file (default: BENCH_sweep.json)",
    )
    bench.add_argument(
        "--compare", help="diff against a JSON file written by --save"
    )
    bench.add_argument(
        "--fit-cost-model",
        nargs="?",
        const="COSTMODEL.json",
        metavar="PATH",
        help="fit the per-kernel linear cost model from this sweep's profiles "
        "and write the artifact here (default: COSTMODEL.json); "
        "`repro serve --cost-model PATH` prices admission from it",
    )
    bench.add_argument(
        "--cell-timeout", type=float, default=None,
        help="per-cell wall-second watchdog: a pathological cell is stopped "
        "mid-run and recorded as status='timeout' with partial counters",
    )
    bench.add_argument(
        "--allow-failures", action="store_true",
        help="exit 0 even when cells finish with status error/oom/timeout "
        "(default: such cells fail the command so CI can't silently pass)",
    )
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve", help="run the resilient clustering service (repro.service)"
    )
    serve.add_argument(
        "--journal",
        help="mutation journal path: mutations are fsynced here before being "
        "acknowledged, and a restarted service replays it to the exact "
        "pre-crash index fingerprints",
    )
    serve.add_argument(
        "--http", type=int, metavar="PORT",
        help="serve HTTP on this port instead of reading stdin "
        "(POST / for requests, GET /metrics for Prometheus text)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None,
        help="default per-request deadline in seconds (requests may carry "
        "their own 'deadline_s'); exceeded deadlines answer "
        "error/deadline_exceeded",
    )
    serve.add_argument(
        "--traffic", type=int, metavar="N",
        help="run N seeded synthetic requests through a fresh service and "
        "print the latency-percentile report instead of serving stdin",
    )
    serve.add_argument("--seed", type=int, default=0, help="traffic seed")
    serve.add_argument(
        "--faults",
        help="fault-injection spec for the service/traffic: a probability or "
        "key=value pairs ('device=0.1,malformed=0.05,storm=0.05,"
        "invalidate=0.05,restart=0.02,attempts=2')",
    )
    serve.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the deterministic fault plan (default 0)",
    )
    serve.add_argument(
        "--save", help="write the traffic report JSON to this file (--traffic)"
    )
    serve.add_argument(
        "--cost-model", metavar="PATH",
        help="price admission control from this fitted COSTMODEL.json "
        "(written by `repro bench --fit-cost-model`) instead of the "
        "hand-set per-point constants",
    )
    serve.add_argument(
        "--backend", choices=("serial", "process"), default="serial",
        help="execution backend for the service device: 'process' fans "
        "eligible traversal chunks over shared-memory worker processes "
        "(responses stay bit-identical to serial)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="worker-process count for --backend process "
        "(default: the machine's CPU count)",
    )
    serve.add_argument(
        "--event-log", metavar="PATH",
        help="write-through the bounded per-request event ring to this JSONL "
        "file (one structured record per request, with trace exemplars)",
    )
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    args = build_parser().parse_args(argv)
    args.argv = list(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
