"""DBSCAN-aware clustering equivalence.

DBSCAN's output is unique except for border points: a border point within
``eps`` of core points of several clusters may legally join any of them
(Section 2.1 of the paper).  Two runs are therefore compared as:

1. identical core masks;
2. identical noise masks (noise = not core and not attached — this *is*
   deterministic);
3. identical partitions of the **core** points (cluster ids may be
   permuted);
4. every border point's cluster must contain a core point within ``eps``
   of it (checked when coordinates are supplied) — i.e. the border
   assignment must be *legal* even where it differs.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.core.labels import DBSCANResult


class ClusteringMismatch(AssertionError):
    """Raised by :func:`assert_dbscan_equivalent` with a specific diagnosis."""


def partitions_equal(labels_a: np.ndarray, labels_b: np.ndarray, mask: np.ndarray) -> bool:
    """Whether two labelings induce the same partition of ``mask``'s points
    (cluster ids may be permuted)."""
    a = np.asarray(labels_a)[mask]
    b = np.asarray(labels_b)[mask]
    if a.shape != b.shape:
        return False
    if a.size == 0:
        return True
    # Same partition iff the joint labelling has exactly as many distinct
    # pairs as each labelling has distinct values.
    pairs = np.unique(np.column_stack([a, b]), axis=0)
    return pairs.shape[0] == np.unique(a).shape[0] == np.unique(b).shape[0]


def _border_assignment_legal(
    result: DBSCANResult, X: np.ndarray, eps: float
) -> np.ndarray:
    """Boolean mask over border points: assigned cluster has a core point
    within ``eps``."""
    border = (result.labels >= 0) & ~result.is_core
    idx = np.flatnonzero(border)
    if idx.size == 0:
        return np.ones(0, dtype=bool)
    core_idx = np.flatnonzero(result.is_core)
    tree = cKDTree(X[core_idx])
    ok = np.zeros(idx.size, dtype=bool)
    neighbor_lists = tree.query_ball_point(X[idx], eps)
    for k, nbrs in enumerate(neighbor_lists):
        if not nbrs:
            continue
        cluster = result.labels[idx[k]]
        ok[k] = bool(np.any(result.labels[core_idx[nbrs]] == cluster))
    return ok


def dbscan_equivalent(
    a: DBSCANResult,
    b: DBSCANResult,
    X: np.ndarray | None = None,
    eps: float | None = None,
) -> bool:
    """Whether two results are DBSCAN-equivalent (see module docstring)."""
    try:
        assert_dbscan_equivalent(a, b, X, eps)
    except ClusteringMismatch:
        return False
    return True


def assert_dbscan_equivalent(
    a: DBSCANResult,
    b: DBSCANResult,
    X: np.ndarray | None = None,
    eps: float | None = None,
) -> None:
    """Assert DBSCAN equivalence, raising :class:`ClusteringMismatch` with
    the first failing criterion."""
    if a.labels.shape != b.labels.shape:
        raise ClusteringMismatch(
            f"point counts differ: {a.labels.shape} vs {b.labels.shape}"
        )
    if not np.array_equal(a.is_core, b.is_core):
        diff = np.flatnonzero(a.is_core != b.is_core)
        raise ClusteringMismatch(
            f"core masks differ at {diff.size} points (first: {diff[:5]})"
        )
    noise_a = a.labels == -1
    noise_b = b.labels == -1
    if not np.array_equal(noise_a, noise_b):
        diff = np.flatnonzero(noise_a != noise_b)
        raise ClusteringMismatch(
            f"noise masks differ at {diff.size} points (first: {diff[:5]})"
        )
    if a.n_clusters != b.n_clusters:
        raise ClusteringMismatch(
            f"cluster counts differ: {a.n_clusters} vs {b.n_clusters}"
        )
    if not partitions_equal(a.labels, b.labels, a.is_core):
        raise ClusteringMismatch("core-point partitions differ")
    if X is not None:
        if eps is None:
            raise ValueError("eps is required when X is given")
        X = np.asarray(X, dtype=np.float64)
        for name, result in (("a", a), ("b", b)):
            ok = _border_assignment_legal(result, X, eps)
            if not ok.all():
                raise ClusteringMismatch(
                    f"result {name}: {np.count_nonzero(~ok)} border points are "
                    "assigned to clusters with no core point within eps"
                )
