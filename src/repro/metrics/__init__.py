"""Clustering comparison and summary metrics.

``equivalence``
    DBSCAN-aware equality: two clusterings are *DBSCAN-equivalent* when
    their core sets, noise sets and core partitions agree; border points
    may differ in which adjacent cluster they joined (the paper:
    "implementations of the algorithm may differ in their handling of
    such border points").  This is the relation all differential tests
    assert.

``scores``
    Quantitative agreement scores (Rand / adjusted Rand / pairwise
    precision-recall) for comparing against ground truth or measuring how
    far two outputs drift.

``stats``
    Cluster-level summaries used by examples and benchmark reports.
"""

from repro.metrics.equivalence import (
    ClusteringMismatch,
    assert_dbscan_equivalent,
    dbscan_equivalent,
    partitions_equal,
)
from repro.metrics.scores import (
    adjusted_rand_index,
    contingency_table,
    pair_confusion,
    pair_precision_recall,
    rand_index,
)
from repro.metrics.stats import clustering_summary, hierarchy_summary

__all__ = [
    "ClusteringMismatch",
    "adjusted_rand_index",
    "assert_dbscan_equivalent",
    "clustering_summary",
    "contingency_table",
    "dbscan_equivalent",
    "hierarchy_summary",
    "pair_confusion",
    "pair_precision_recall",
    "partitions_equal",
    "rand_index",
]
