"""Quantitative clustering-agreement scores.

The equivalence checker answers "are these the *same* DBSCAN output?";
the scores here answer "how close are two labelings?" — useful when
comparing against ground truth on synthetic data, or measuring how much
border-point reassignment actually moves the result.  Implemented from
the standard pair-counting definitions (Hubert & Arabie 1985 for the
adjusted Rand index), in pure vectorised numpy.

Noise handling: DBSCAN labels contain ``-1`` entries that are *not* a
cluster.  All scores treat each noise point as its own singleton cluster
(the conventional choice for density-based comparisons), so two runs that
agree on noise agree on those points.
"""

from __future__ import annotations

import numpy as np


def _as_dense_labels(labels: np.ndarray) -> np.ndarray:
    """Map labels to 0..k-1 with every noise point its own singleton."""
    labels = np.asarray(labels, dtype=np.int64)
    out = labels.copy()
    noise = labels == -1
    n_clusters = labels.max() + 1 if labels.size and labels.max() >= 0 else 0
    out[noise] = n_clusters + np.arange(int(noise.sum()))
    return out


def contingency_table(labels_a: np.ndarray, labels_b: np.ndarray) -> np.ndarray:
    """Dense contingency matrix of two labelings (noise as singletons)."""
    a = _as_dense_labels(labels_a)
    b = _as_dense_labels(labels_b)
    if a.shape != b.shape:
        raise ValueError(f"labelings differ in length: {a.shape} vs {b.shape}")
    ka = int(a.max()) + 1 if a.size else 0
    kb = int(b.max()) + 1 if b.size else 0
    table = np.zeros((ka, kb), dtype=np.int64)
    np.add.at(table, (a, b), 1)
    return table


def _comb2(x: np.ndarray) -> np.ndarray:
    return x * (x - 1) // 2


def pair_confusion(labels_a: np.ndarray, labels_b: np.ndarray) -> dict:
    """Pair-counting confusion: how point pairs are grouped by each side.

    Returns ``{"both": .., "only_a": .., "only_b": .., "neither": ..}`` —
    pairs co-clustered by both / only one / neither labeling.
    """
    table = contingency_table(labels_a, labels_b)
    n = int(table.sum())
    together_both = int(_comb2(table).sum())
    together_a = int(_comb2(table.sum(axis=1)).sum())
    together_b = int(_comb2(table.sum(axis=0)).sum())
    total = int(_comb2(np.array([n]))[0])
    return {
        "both": together_both,
        "only_a": together_a - together_both,
        "only_b": together_b - together_both,
        "neither": total - together_a - together_b + together_both,
    }


def rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Plain Rand index: fraction of point pairs both labelings agree on."""
    pc = pair_confusion(labels_a, labels_b)
    total = sum(pc.values())
    if total == 0:
        return 1.0
    return (pc["both"] + pc["neither"]) / total


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Adjusted Rand index (Hubert & Arabie): 1 for identical partitions,
    ~0 for independent ones, negative for worse-than-chance."""
    table = contingency_table(labels_a, labels_b)
    n = int(table.sum())
    if n < 2:
        return 1.0
    sum_comb = float(_comb2(table).sum())
    sum_a = float(_comb2(table.sum(axis=1)).sum())
    sum_b = float(_comb2(table.sum(axis=0)).sum())
    total = float(_comb2(np.array([n]))[0])
    expected = sum_a * sum_b / total
    max_index = 0.5 * (sum_a + sum_b)
    if max_index == expected:
        return 1.0
    return (sum_comb - expected) / (max_index - expected)


def pair_precision_recall(labels_pred: np.ndarray, labels_true: np.ndarray) -> tuple[float, float]:
    """Pairwise precision/recall of a predicted labeling vs a reference.

    Precision: of the pairs the prediction co-clusters, how many the
    reference co-clusters; recall: the converse.
    """
    pc = pair_confusion(labels_pred, labels_true)
    pred_pairs = pc["both"] + pc["only_a"]
    true_pairs = pc["both"] + pc["only_b"]
    precision = pc["both"] / pred_pairs if pred_pairs else 1.0
    recall = pc["both"] / true_pairs if true_pairs else 1.0
    return precision, recall
