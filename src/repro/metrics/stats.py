"""Cluster-level summaries for examples and benchmark reports."""

from __future__ import annotations

import numpy as np

from repro.core.labels import DBSCANResult


def clustering_summary(result: DBSCANResult) -> dict:
    """Summary statistics of one clustering result.

    Returns a plain dict with the headline numbers a run report prints:
    cluster count, core/border/noise split, and size distribution facts.
    """
    sizes = result.cluster_sizes()
    n = result.labels.shape[0]
    summary = {
        "n_points": int(n),
        "n_clusters": int(result.n_clusters),
        "n_core": int(np.count_nonzero(result.is_core)),
        "n_border": result.n_border,
        "n_noise": result.n_noise,
        "noise_fraction": result.n_noise / n,
    }
    if sizes.size:
        summary.update(
            largest_cluster=int(sizes.max()),
            smallest_cluster=int(sizes.min()),
            median_cluster=float(np.median(sizes)),
        )
    else:
        summary.update(largest_cluster=0, smallest_cluster=0, median_cluster=0.0)
    return summary


def hierarchy_summary(result) -> dict:
    """Summary statistics of one hierarchical (HDBSCAN) result.

    The hierarchical counterpart of :func:`clustering_summary` —
    :class:`~repro.hierarchy.hdbscan.HDBSCANResult` has probabilities and
    a condensed tree instead of a core/border split, so the headline
    numbers differ accordingly.
    """
    labels = result.labels
    n = int(labels.shape[0])
    sizes = np.bincount(labels[labels >= 0]) if n else np.zeros(0, dtype=np.int64)
    sizes = sizes[sizes > 0]
    summary = {
        "n_points": n,
        "n_clusters": int(result.n_clusters),
        "n_noise": int(result.n_noise),
        "noise_fraction": result.n_noise / n if n else 0.0,
        "mean_probability": float(result.probabilities.mean()) if n else 0.0,
    }
    if sizes.size:
        summary.update(
            largest_cluster=int(sizes.max()),
            smallest_cluster=int(sizes.min()),
            median_cluster=float(np.median(sizes)),
        )
    else:
        summary.update(largest_cluster=0, smallest_cluster=0, median_cluster=0.0)
    return summary
