"""Cluster-level summaries for examples and benchmark reports."""

from __future__ import annotations

import numpy as np

from repro.core.labels import DBSCANResult


def clustering_summary(result: DBSCANResult) -> dict:
    """Summary statistics of one clustering result.

    Returns a plain dict with the headline numbers a run report prints:
    cluster count, core/border/noise split, and size distribution facts.
    """
    sizes = result.cluster_sizes()
    n = result.labels.shape[0]
    summary = {
        "n_points": int(n),
        "n_clusters": int(result.n_clusters),
        "n_core": int(np.count_nonzero(result.is_core)),
        "n_border": result.n_border,
        "n_noise": result.n_noise,
        "noise_fraction": result.n_noise / n,
    }
    if sizes.size:
        summary.update(
            largest_cluster=int(sizes.max()),
            smallest_cluster=int(sizes.min()),
            median_cluster=float(np.median(sizes)),
        )
    else:
        summary.update(largest_cluster=0, smallest_cluster=0, median_cluster=0.0)
    return summary
