"""FDBSCAN — fused tree traversal + union-find (Section 4.1).

The algorithm builds a linear BVH over the points and runs the two-phase
framework with one thread (query) per point:

- **preprocessing**: a batched radius search counts each point's
  neighbours, terminating a query as soon as ``minpts`` neighbours are
  seen (a point counts itself);
- **main phase**: a second batched traversal streams every neighbour pair
  to the union-find resolution *as the pairs are discovered* — neighbours
  are never stored.  The traversal uses the paper's leaf-index mask
  (Figure 1): the subtrees holding leaves at sorted positions at or below
  the query's own leaf are hidden, so every unordered pair is processed
  exactly once, saving memory accesses, distance computations and
  Union-Find operations.

Both optimisations are exposed as switches (``use_mask``, ``early_exit``)
so the ablation benchmarks can quantify each one.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bvh.traversal import DEFAULT_CHUNK_SIZE, count_within, for_each_leaf_hit
from repro.core.framework import DEFAULT_PAIR_BUFFER, PairResolver
from repro.core.index import DBSCANIndex
from repro.core.labels import DBSCANResult, finalize_clusters
from repro.core.validation import validate_params, validate_points, validate_weights
from repro.device.device import Device, default_device
from repro.unionfind.ecl import EclUnionFind


def fdbscan(
    X: np.ndarray,
    eps: float,
    min_samples: int,
    device: Device | None = None,
    use_mask: bool = True,
    early_exit: bool = True,
    chunk_size: int | None = None,
    sample_weight=None,
    index: DBSCANIndex | None = None,
    query_order: str = "input",
    pair_buffer: int | None = DEFAULT_PAIR_BUFFER,
    traversal: str | None = None,
    watchdog=None,
    backend=None,
    cost_model=None,
) -> DBSCANResult:
    """Cluster ``X`` with FDBSCAN.

    Parameters
    ----------
    X:
        ``(n, d)`` points, ``1 <= d <= 3``.
    eps:
        Neighbourhood radius (``dist(x, y) <= eps``).
    min_samples:
        The ``minpts`` density threshold; a point is core when its
        ``eps``-neighbourhood (itself included) holds at least this many
        points.
    device:
        Accounting device (optional).
    use_mask:
        Apply the leaf-index traversal mask in the main phase (Section
        4.1).  Disabling it processes every pair twice — the ablation
        baseline.
    early_exit:
        Terminate preprocessing traversals at ``minpts`` neighbours
        (Section 3.2).  Disabling computes full neighbourhood counts
        (useful for ``minpts`` sweeps; exposed in ``info['core_counts']``).
    chunk_size:
        Queries advanced per traversal wavefront (the resident-thread
        bound; ``None`` = the traversal default).  Output is invariant to
        it; transient frontier memory is proportional to it.
    sample_weight:
        Optional positive per-point weights: a point is core when the
        summed weight of its eps-neighbourhood (itself included) reaches
        ``min_samples`` — the sklearn-compatible weighted-density
        semantics.  With integer weights this is exactly clustering the
        multiset with each point repeated ``weight`` times.
    index:
        Optional prebuilt :class:`~repro.core.index.DBSCANIndex` over
        ``X`` (fingerprint-checked).  With a warm index the tree build is
        skipped and its recorded cost replayed onto ``device`` instead,
        so counters and memory peaks stay comparable to a cold run; the
        index used (built here if none was given) is returned in
        ``info["index"]`` for reuse.
    query_order:
        Traversal scheduling: ``"input"`` chunks queries in input order,
        ``"morton"`` in Z-curve order for spatially coherent wavefronts
        (smaller frontiers, better locality).  Labels and work-counter
        totals are identical either way.
    pair_buffer:
        Pairs accumulated before each union-find launch in the main phase
        (``None`` = resolve every traversal step's batch immediately).
        Output is identical for any buffering.
    traversal:
        Traversal engine for both phases: ``"single"`` (per-query
        frontier), ``"dual"`` (dual-tree query-BVH pruning) or ``"auto"``
        (per-chunk engine choice from the cost model); ``None`` defers to
        the index's stored preference (default ``"single"``).  Labels and
        ``distance_evals`` are bit-identical between engines, so the
        choice is pure scheduling.
    watchdog:
        Optional zero-argument callable polled once per traversal
        wavefront step in both phases (a deadline's
        :meth:`~repro.faults.Deadline.check`); aborts by raising.
    backend:
        Execution backend for both traversal phases (``"serial"``,
        ``"process"`` or an
        :class:`~repro.device.backends.ExecutionBackend`); ``None``
        defers to the index's stored preference, then the device's.
        Labels and work counters are bit-identical across backends.
    cost_model:
        Fitted cost model feeding ``traversal="auto"``'s per-chunk engine
        choice (duck-typed :class:`repro.obs.fit.FittedCostModel`);
        ``None`` defers to the index's stored model, then built-in rates.
        Advisory only — never affects results.

    Returns
    -------
    :class:`~repro.core.labels.DBSCANResult`
        ``info`` carries phase wall-times (``t_build``, ``t_preprocess``,
        ``t_main``, ``t_finalize``), the reusable ``index`` (plus
        ``index_reused``), and, when ``early_exit`` is off, the exact
        neighbour counts.
    """
    X = validate_points(X)
    eps, minpts = validate_params(eps, min_samples)
    dev = default_device(device)
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    n = X.shape[0]
    info: dict = {"algorithm": "fdbscan", "n": n, "eps": eps, "min_samples": minpts}

    t0 = time.perf_counter()
    if index is None:
        index = DBSCANIndex(X)
    else:
        index.check_points(X)
    tree, reused = index.points_tree(dev)
    if traversal is None:
        traversal = index.traversal or "single"
    info["traversal"] = traversal
    if backend is None:
        backend = getattr(index, "backend", None)
    _bk = backend if backend is not None else getattr(dev, "backend", None)
    info["backend"] = getattr(_bk, "name", _bk) or "serial"
    # Scheduling inputs shared by both phases: the cached Morton schedule
    # (the queries *are* the indexed points here) whenever a Morton order
    # will be used, and the auto chooser's cost model + tree statistics.
    morton_schedule = None
    if traversal in ("dual", "auto") or query_order == "morton":
        morton_schedule = index.morton_schedule(dev)
    tree_stats = None
    if traversal == "auto":
        if cost_model is None:
            cost_model = getattr(index, "cost_model", None)
        tree_stats = index.tree_statistics(dev)
        auto_before = {
            k: dev.counters.extra.get(k, 0)
            for k in ("auto_single_chunks", "auto_dual_chunks", "auto_pred_cost_us")
        }
    t1 = time.perf_counter()
    info["t_build"] = t1 - t0
    info["index"] = index
    info["index_reused"] = reused

    # --- preprocessing phase: core-point determination --------------------
    is_core: np.ndarray | None
    if sample_weight is not None:
        weights = validate_weights(sample_weight, n)
        counts = count_within(
            tree,
            X,
            eps,
            stop_at=minpts if early_exit else None,
            device=dev,
            chunk_size=chunk_size,
            leaf_weights=weights[tree.order],
            query_order=query_order,
            traversal=traversal,
            watchdog=watchdog,
            backend=backend,
            morton_schedule=morton_schedule,
            cost_model=cost_model,
            tree_stats=tree_stats,
        )
        is_core = counts >= minpts
        resolution_core = is_core
        if not early_exit:
            info["core_counts"] = counts
    elif minpts == 2:
        # Skipped (Algorithm 3, line 2): any pair within eps in the main
        # phase certifies both endpoints core.
        is_core = None
        resolution_core = np.ones(n, dtype=bool)
    elif minpts == 1:
        # Every point is core (it is its own neighbour); no search needed.
        is_core = np.ones(n, dtype=bool)
        resolution_core = is_core
    else:
        counts = count_within(
            tree,
            X,
            eps,
            stop_at=minpts if early_exit else None,
            device=dev,
            chunk_size=chunk_size,
            query_order=query_order,
            traversal=traversal,
            watchdog=watchdog,
            backend=backend,
            morton_schedule=morton_schedule,
            cost_model=cost_model,
            tree_stats=tree_stats,
        )
        is_core = counts >= minpts
        resolution_core = is_core
        if not early_exit:
            info["core_counts"] = counts
    t2 = time.perf_counter()
    info["t_preprocess"] = t2 - t1

    # --- main phase: fused traversal + union-find --------------------------
    uf = EclUnionFind(n, device=dev)
    mask_positions = tree.position if use_mask else None
    order = tree.order
    resolver = PairResolver(uf, resolution_core, device=dev, buffer_pairs=pair_buffer)

    def on_hits(q_ids: np.ndarray, leaf_pos: np.ndarray) -> None:
        nbr = order[leaf_pos]
        if not use_mask:
            keep = nbr != q_ids
            q = q_ids[keep]
            nb = nbr[keep]
        else:
            q, nb = q_ids, nbr
        resolver.add(q, nb)

    for_each_leaf_hit(
        tree,
        X,
        eps,
        on_hits,
        mask_positions=mask_positions,
        device=dev,
        kernel_name="fdbscan_main",
        chunk_size=chunk_size,
        query_order=query_order,
        traversal=traversal,
        watchdog=watchdog,
        backend=backend,
        morton_schedule=morton_schedule,
        cost_model=cost_model,
        tree_stats=tree_stats,
    )
    resolver.finalize()
    t3 = time.perf_counter()
    info["t_main"] = t3 - t2
    if traversal == "auto":
        extra = dev.counters.extra
        info["auto"] = {
            "single_chunks": extra.get("auto_single_chunks", 0)
            - auto_before["auto_single_chunks"],
            "dual_chunks": extra.get("auto_dual_chunks", 0)
            - auto_before["auto_dual_chunks"],
            "pred_cost_seconds": (
                extra.get("auto_pred_cost_us", 0)
                - auto_before["auto_pred_cost_us"]
            )
            * 1e-6,
        }

    # --- finalisation -------------------------------------------------------
    labels, core_mask, n_clusters = finalize_clusters(uf.parents, is_core, dev.counters)
    info["t_finalize"] = time.perf_counter() - t3
    return DBSCANResult(labels=labels, is_core=core_mask, n_clusters=n_clusters, info=info)
