"""Reusable spatial index for parameter sweeps.

The paper's cost model makes BVH construction a fixed prefix of every
run: the tree depends only on the *points*, never on ``eps`` or
``minpts``.  Yet a naive figure sweep (Section 5: eps panels in Figures
4/7, minpts panels in Figures 4/6) rebuilds that identical tree for every
cell.  :class:`DBSCANIndex` factors the construction out — the follow-up
ArborX work makes exactly this index-reuse a first-class primitive, and
"Theoretically-Efficient and Practical Parallel DBSCAN" (Wang et al.)
likewise separates index construction from the per-parameter clustering
phases.

An index wraps:

- the **points BVH** (tree + sorted order), shared by every FDBSCAN run
  over the same point set regardless of parameters;
- an optional bounded cache of **dense-cell decompositions** for
  FDBSCAN-DenseBox, keyed by ``(eps, minpts, weights)`` — the DenseBox
  mixed tree *does* depend on the parameters, so entries are only shared
  by runs with equal keys (e.g. the same cell swept by two algorithm
  aliases, or repeated calls while tuning);
- a **content fingerprint** of the validated points, so a stale index can
  never be silently applied to different data.

Accounting contract
-------------------
Each component is built *live* on the device of the first run that needs
it, under :meth:`~repro.device.device.Device.recording`; every later run
**replays** the recorded cost onto its own device
(:meth:`~repro.device.device.Device.replay`).  A warm run therefore skips
the build's wall time — that is the speedup — while its counters, kernel
trace (spans flagged ``replayed=True``) and memory peak remain comparable
to a cold run's.  Under a memory cap, replaying raises the same
:class:`~repro.device.memory.DeviceMemoryError` a cold build would.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.bvh.aabb import boxes_from_points
from repro.bvh.builder import build_bvh
from repro.bvh.tree import BVH
from repro.core.validation import validate_points
from repro.device.device import Device, ReplayableCost, default_device
from repro.grid.dense_cells import (
    DenseDecomposition,
    GridBinning,
    bin_points,
    threshold_binning,
)

#: Default bound on cached DenseBox decompositions per index (FIFO
#: eviction).  Each entry holds a mixed tree plus the grid CSR arrays, so
#: the cache is kept small; sweeps revisit at most a handful of identical
#: (eps, minpts) keys.
DEFAULT_MAX_DENSE_ENTRIES = 4

#: Default bound on cached eps-keyed grid binnings (FIFO eviction).  A
#: binning is the minpts-independent half of a decomposition (cell ids +
#: CSR membership), so one entry serves a whole minpts sweep at that eps.
DEFAULT_MAX_BINNINGS = 8


def points_fingerprint(X: np.ndarray) -> str:
    """Content hash of a validated point set (shape + raw float64 bytes)."""
    X = np.ascontiguousarray(X, dtype=np.float64)
    digest = hashlib.sha1()
    digest.update(repr(X.shape).encode())
    digest.update(X.tobytes())
    return digest.hexdigest()


def _weights_key(weights: np.ndarray | None) -> str:
    if weights is None:
        return "unweighted"
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    return hashlib.sha1(weights.tobytes()).hexdigest()


@dataclass
class _PointsEntry:
    tree: BVH
    cost: ReplayableCost


@dataclass
class _BinningEntry:
    binning: GridBinning
    cost: ReplayableCost


@dataclass
class _DenseEntry:
    deco: DenseDecomposition
    tree: BVH
    #: recorded cost of the threshold + mixed-tree stage only.
    cost: ReplayableCost
    #: recorded cost of the eps-binning this entry was thresholded from
    #: (shared with the binning cache; replayed first on a warm hit so a
    #: warm run's accounting equals a cold run's).
    bin_cost: ReplayableCost


class DBSCANIndex:
    """Prebuilt spatial index over one point set.

    Build one per dataset and pass it as ``index=`` to
    :func:`~repro.core.api.dbscan`,
    :func:`~repro.core.fdbscan.fdbscan` or
    :func:`~repro.core.densebox.fdbscan_densebox`; every run also returns
    the index it used in ``result.info["index"]``, so the first (cold)
    call can seed reuse for the rest of a sweep::

        index = None
        for eps in eps_values:
            res = dbscan(X, eps, minpts, algorithm="fdbscan", index=index)
            index = res.info["index"]       # built on the first iteration

    Components are built lazily on first use; see the module docstring
    for the cost-replay accounting contract.

    Parameters
    ----------
    X:
        ``(n, d)`` points, validated exactly as the clustering entry
        points validate them.
    max_dense_entries:
        Bound on the cached DenseBox decompositions (FIFO eviction).
    traversal:
        Stored traversal-engine preference (``"single"``/``"dual"``/
        ``"auto"``) applied by runs that pass ``traversal=None``; an
        explicit per-call ``traversal=`` always wins.  A pure scheduling
        choice — the cached structures are engine-independent, so one
        index serves every engine.
    cost_model:
        Stored fitted cost model (duck-typed
        :class:`repro.obs.fit.FittedCostModel`) feeding the
        ``traversal="auto"`` per-chunk engine choice for runs that pass
        ``cost_model=None``; advisory only, never affects results.
    """

    def __init__(
        self,
        X: np.ndarray,
        max_dense_entries: int = DEFAULT_MAX_DENSE_ENTRIES,
        max_binnings: int = DEFAULT_MAX_BINNINGS,
        traversal: str | None = None,
        backend=None,
        cost_model=None,
    ):
        X = validate_points(X)
        self._X = X
        self.n, self.dim = X.shape
        self.fingerprint = points_fingerprint(X)
        self.max_dense_entries = int(max_dense_entries)
        self.max_binnings = int(max_binnings)
        if traversal is not None and traversal not in ("single", "dual", "auto"):
            raise ValueError(
                f"traversal must be 'single', 'dual', 'auto' or None; "
                f"got {traversal!r}"
            )
        self.traversal = traversal
        self.cost_model = cost_model
        if backend is not None and isinstance(backend, str):
            from repro.device.backends import BACKENDS

            if backend not in BACKENDS:
                raise ValueError(
                    f"backend must be one of {BACKENDS} or None; got {backend!r}"
                )
        #: Stored execution-backend preference (``"serial"``/``"process"``
        #: or an :class:`~repro.device.backends.ExecutionBackend`), applied
        #: by runs that pass ``backend=None`` — the scheduling analogue of
        #: :attr:`traversal`.  The cached structures are backend-
        #: independent (results are bit-identical across backends), so one
        #: index serves all of them.
        self.backend = backend
        self._points: _PointsEntry | None = None
        self._dense: "OrderedDict[tuple, _DenseEntry]" = OrderedDict()
        self._binnings: "OrderedDict[float, _BinningEntry]" = OrderedDict()
        #: live grid binnings actually executed for this index.
        self.binning_builds = 0
        #: binnings served from the eps-keyed cache (replayed, not re-run).
        self.binning_hits = 0
        #: cached Morton query schedule over the indexed points
        #: (eps-independent, so one entry serves every run) + tree stats.
        self._morton: tuple | None = None
        self._tree_stats = None
        #: live Morton schedules actually computed for this index.
        self.morton_builds = 0
        #: schedules served from the cache (replayed, not re-sorted).
        self.morton_hits = 0

    # -- compatibility ---------------------------------------------------------

    def check_points(self, X: np.ndarray) -> None:
        """Raise ``ValueError`` unless ``X`` is the indexed point set.

        The check hashes the validated input — O(n), negligible next to
        clustering — so a stale index can never silently produce labels
        for the wrong data.
        """
        X = validate_points(X)
        if X.shape != (self.n, self.dim):
            raise ValueError(
                f"index was built over shape {(self.n, self.dim)}; got {X.shape}"
            )
        if points_fingerprint(X) != self.fingerprint:
            raise ValueError(
                "index fingerprint mismatch: the given points differ from the "
                "ones this DBSCANIndex was built over"
            )

    # -- component accessors ---------------------------------------------------

    @property
    def has_points_tree(self) -> bool:
        return self._points is not None

    def points_tree(self, device: Device | None = None) -> tuple[BVH, bool]:
        """The BVH over the raw points (FDBSCAN's index).

        Returns ``(tree, reused)``.  The first call builds the tree live
        on ``device`` and records its cost; later calls replay that cost
        onto the given device and return the cached tree.
        """
        dev = default_device(device)
        if self._points is not None:
            dev.replay(self._points.cost)
            return self._points.tree, True
        with dev.recording() as cost:
            lo, hi = boxes_from_points(self._X)
            tree = build_bvh(lo, hi, device=dev)
        self._points = _PointsEntry(tree=tree, cost=cost)
        return tree, False

    def morton_schedule(self, device: Device | None = None) -> np.ndarray | None:
        """The Morton chunking permutation over the indexed points.

        The dual/auto engines (and ``query_order="morton"``) schedule the
        *point set itself* as queries in Z-curve order; the permutation
        depends only on the points — never on ``eps``, ``minpts`` or the
        engine — so it is computed once per index and replayed thereafter,
        exactly like the binning cache.  Returns ``None`` for ``n < 2``
        (the schedule's own convention for "input order is fine").
        """
        dev = default_device(device)
        from repro.bvh.traversal import query_schedule

        if self._morton is not None:
            schedule, cost = self._morton
            dev.replay(cost)
            self.morton_hits += 1
            return schedule
        with dev.recording() as cost:
            schedule = query_schedule(self._X, "morton")
        self._morton = (schedule, cost)
        self.morton_builds += 1
        return schedule

    def tree_statistics(self, device: Device | None = None):
        """Shape statistics of the points tree (feeds ``traversal="auto"``).

        Computed once per index (the tree never changes) and cached; the
        first call builds the points tree if needed.
        """
        if self._tree_stats is None:
            from repro.bvh.statistics import tree_statistics

            tree, _reused = self.points_tree(device)
            self._tree_stats = tree_statistics(tree)
        return self._tree_stats

    def grid_binning(
        self,
        eps: float,
        device: Device | None = None,
    ) -> tuple[GridBinning, ReplayableCost, bool]:
        """The eps-keyed grid binning (the minpts-independent half of a
        DenseBox decomposition).

        Returns ``(binning, cost, reused)``.  Cell coordinates and the CSR
        membership depend only on the points and ``eps``, so one cached
        binning serves every ``minpts`` (and every sample weighting) at
        that ``eps`` — a minpts sweep re-thresholds dense cells instead of
        redecomposing.  The first call per eps bins live on ``device`` and
        records the cost; later calls replay it.  At most
        :attr:`max_binnings` entries are kept (FIFO).
        """
        dev = default_device(device)
        key = float(eps)
        entry = self._binnings.get(key)
        if entry is not None:
            self._binnings.move_to_end(key)
            dev.replay(entry.cost)
            self.binning_hits += 1
            return entry.binning, entry.cost, True
        with dev.recording() as cost:
            binning = bin_points(self._X, eps, device=dev)
        self._binnings[key] = _BinningEntry(binning=binning, cost=cost)
        self.binning_builds += 1
        while len(self._binnings) > self.max_binnings:
            self._binnings.popitem(last=False)
        return binning, cost, False

    def dense_decomposition(
        self,
        eps: float,
        minpts: int,
        device: Device | None = None,
        sample_weight: np.ndarray | None = None,
    ) -> tuple[DenseDecomposition, BVH, bool]:
        """The dense-cell decomposition + mixed tree (DenseBox's index).

        Returns ``(decomposition, tree, reused)``.  Entries are keyed by
        ``(eps, minpts, weights)`` because the dense-cell *set* — and hence
        the mixed primitive set the tree is built over — depends on all
        three; at most :attr:`max_dense_entries` are kept (FIFO).  The
        underlying grid binning, however, is keyed by ``eps`` alone
        (:meth:`grid_binning`): a cold decomposition at a warm eps replays
        the cached binning and only runs the threshold + tree stages live.
        """
        dev = default_device(device)
        key = (float(eps), int(minpts), _weights_key(sample_weight))
        entry = self._dense.get(key)
        if entry is not None:
            self._dense.move_to_end(key)
            dev.replay(entry.bin_cost)
            dev.replay(entry.cost)
            return entry.deco, entry.tree, True
        binning, bin_cost, _bin_reused = self.grid_binning(eps, device=dev)
        with dev.recording() as cost:
            deco = threshold_binning(
                self._X, binning, minpts, device=dev, sample_weight=sample_weight
            )
            tree = build_bvh(deco.prim_lo, deco.prim_hi, device=dev)
        self._dense[key] = _DenseEntry(deco=deco, tree=tree, cost=cost, bin_cost=bin_cost)
        while len(self._dense) > self.max_dense_entries:
            self._dense.popitem(last=False)
        return deco, tree, False

    # -- introspection ---------------------------------------------------------

    @property
    def n_dense_entries(self) -> int:
        return len(self._dense)

    def build_seconds(self) -> dict[str, float]:
        """Recorded build wall-seconds per component (cold costs a warm
        run skipped; keys: ``"points"``, one ``"binning eps=.."`` per
        cached grid binning and one ``"dense eps=.. minpts=.."`` per
        cached decomposition — the dense figure covers only the threshold
        + tree stage, its binning is reported separately)."""
        out: dict[str, float] = {}
        if self._points is not None:
            out["points"] = self._points.cost.seconds
        for eps, bentry in self._binnings.items():
            out[f"binning eps={eps:g}"] = bentry.cost.seconds
        for (eps, minpts, _w), entry in self._dense.items():
            out[f"dense eps={eps:g} minpts={minpts}"] = entry.cost.seconds
        return out

    def nbytes(self) -> int:
        """Host-side footprint of the cached structures.

        Dense decompositions share their binning arrays with the binning
        cache, so those bytes are counted once (under the binning) and
        subtracted from each decomposition's total.
        """
        total = 0
        if self._points is not None:
            total += self._points.tree.nbytes()
        for bentry in self._binnings.values():
            total += bentry.binning.nbytes()
        for (eps, _minpts, _w), entry in self._dense.items():
            total += entry.tree.nbytes() + entry.deco.nbytes()
            if eps in self._binnings:
                # CSR arrays shared with the cached binning: count once.
                total -= (
                    entry.deco.cell_of_point.nbytes
                    + entry.deco.cell_counts.nbytes
                    + entry.deco.members.nbytes
                    + entry.deco.cell_starts.nbytes
                )
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        built = "built" if self._points is not None else "unbuilt"
        return (
            f"DBSCANIndex(n={self.n}, dim={self.dim}, points_tree={built}, "
            f"dense_entries={len(self._dense)}, fp={self.fingerprint[:10]})"
        )
