"""DBSCAN* (Campello et al. 2013) — a paper future-work item (Section 6).

DBSCAN* "simplifies the algorithm by removing the notion of border points
completely": clusters consist of core points only; every non-core point
is noise.  This improves consistency with the statistical interpretation
of clustering and underlies HDBSCAN.

The paper notes its algorithms "can be easily adapted for DBSCAN*" — and
within the two-phase framework the adaptation is exactly: run the main
phase without the border-attachment rule.  Since border attachment never
influences the core partition (attached points are never unioned
through), the same clusters are obtained by demoting border points after
any standard run, which is how :func:`dbscan_star` is implemented: it
composes with *every* algorithm in the registry.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import dbscan
from repro.core.labels import DBSCANResult, relabel_consecutive
from repro.device.device import Device


def dbscan_star(
    X: np.ndarray,
    eps: float,
    min_samples: int,
    algorithm: str = "auto",
    device: Device | None = None,
    **kwargs,
) -> DBSCANResult:
    """Cluster ``X`` with DBSCAN*: clusters of core points only.

    Accepts everything :func:`repro.core.api.dbscan` accepts.  Cluster ids
    are renumbered consecutively after border demotion (clusters never
    vanish — every DBSCAN cluster contains at least one core point).
    """
    base = dbscan(X, eps, min_samples, algorithm=algorithm, device=device, **kwargs)
    labels, n_clusters = relabel_consecutive(base.labels, base.is_core)
    info = dict(base.info)
    info["variant"] = "dbscan*"
    info["demoted_border_points"] = int(
        np.count_nonzero((base.labels >= 0) & ~base.is_core)
    )
    return DBSCANResult(
        labels=labels, is_core=base.is_core, n_clusters=n_clusters, info=info
    )
