"""The parallel disjoint-set DBSCAN framework (Section 3.2, Algorithm 3).

The framework splits DBSCAN into two batched phases:

1. **preprocessing** — determine the core points.  The framework only
   requires *whether* ``|N_eps(x)| >= minpts``, so incremental neighbour
   discovery may stop at ``minpts`` (early termination).  The phase is
   skipped entirely for ``minpts == 2``, where any pair within ``eps``
   certifies both endpoints core (Algorithm 3, line 2).

2. **main** — for every pair ``(x, y)`` with ``dist(x, y) <= eps``,
   executed with edge-level parallelism:

   - both core                →  ``Union(x, y)``;
   - one core, other unlabeled →  attach the non-core point to the core
     point's cluster with a single **atomic CAS** on the labels array —
     the paper's replacement for the critical section of Algorithm 3
     (lines 10-12), which prevents the *bridging effect* where a border
     point within ``eps`` of two clusters would merge them;
   - neither core             →  nothing.

:func:`resolve_pairs` is that per-edge resolution, shared verbatim by
FDBSCAN and FDBSCAN-DenseBox (the two algorithms differ only in how pairs
are *discovered*).  Pairs arrive in per-traversal-step batches and are
consumed immediately — the fused, on-the-fly processing that keeps memory
linear in ``n``.
"""

from __future__ import annotations

import numpy as np

from repro.device.atomics import atomic_cas_batch
from repro.device.device import Device, default_device
from repro.unionfind.ecl import EclUnionFind


def attach_border(
    uf: EclUnionFind,
    core_pts: np.ndarray,
    border_pts: np.ndarray,
    device: Device | None = None,
) -> None:
    """CAS-attach unlabeled non-core points to their core neighbour's cluster.

    For each pair, ``labels[border] = Find(core)`` iff ``labels[border]``
    still equals ``border`` (the "not yet a member of any cluster" check of
    Algorithm 3, line 9, folded into the CAS's expected value).  Losing
    requests — duplicates in the batch, or points attached by an earlier
    batch — fail the CAS and are dropped, which is precisely the behaviour
    that prevents cluster bridging through shared border points.
    """
    if core_pts.size == 0:
        return
    dev = default_device(device)
    reps = uf.find(core_pts)
    atomic_cas_batch(
        uf.parents,
        index=border_pts,
        expected=border_pts,
        desired=reps,
        counters=dev.counters,
    )


def resolve_pairs(
    uf: EclUnionFind,
    is_core: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    device: Device | None = None,
) -> None:
    """Apply Algorithm 3's per-edge resolution to a batch of pairs.

    ``x``/``y`` are equal-length arrays of point indices with
    ``dist(x, y) <= eps`` already established by the caller.  Each
    unordered pair needs to be presented only once (either orientation):
    both orientations of the core/non-core rule are applied here.
    """
    dev = default_device(device)
    dev.counters.add("pairs_processed", x.shape[0])
    cx = is_core[x]
    cy = is_core[y]
    both = cx & cy
    if both.any():
        uf.union(x[both], y[both])
    x_only = cx & ~cy
    if x_only.any():
        attach_border(uf, x[x_only], y[x_only], dev)
    y_only = cy & ~cx
    if y_only.any():
        attach_border(uf, y[y_only], x[y_only], dev)
