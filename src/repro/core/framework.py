"""The parallel disjoint-set DBSCAN framework (Section 3.2, Algorithm 3).

The framework splits DBSCAN into two batched phases:

1. **preprocessing** — determine the core points.  The framework only
   requires *whether* ``|N_eps(x)| >= minpts``, so incremental neighbour
   discovery may stop at ``minpts`` (early termination).  The phase is
   skipped entirely for ``minpts == 2``, where any pair within ``eps``
   certifies both endpoints core (Algorithm 3, line 2).

2. **main** — for every pair ``(x, y)`` with ``dist(x, y) <= eps``,
   executed with edge-level parallelism:

   - both core                →  ``Union(x, y)``;
   - one core, other unlabeled →  attach the non-core point to the core
     point's cluster with a single **atomic CAS** on the labels array —
     the paper's replacement for the critical section of Algorithm 3
     (lines 10-12), which prevents the *bridging effect* where a border
     point within ``eps`` of two clusters would merge them;
   - neither core             →  nothing.

:func:`resolve_pairs` is that per-edge resolution, shared verbatim by
FDBSCAN and FDBSCAN-DenseBox (the two algorithms differ only in how pairs
are *discovered*).  Pairs arrive in per-traversal-step batches and are
consumed immediately — the fused, on-the-fly processing that keeps memory
linear in ``n``.

:class:`PairResolver` is the batched evolution of that resolution: it
buffers the per-step micro-batches to a target size before launching the
union-find kernels (small per-step batches pay a fixed launch overhead
each — exactly the behaviour the paper's fused kernels avoid on real
hardware), and it replaces the *first-wins* CAS border attachment with a
commutative scatter-min over candidate core neighbours, making the final
labels independent of pair arrival order — and hence identical across
chunk sizes, query orders and buffering choices.
"""

from __future__ import annotations

import numpy as np

from repro.device.atomics import atomic_cas_batch
from repro.device.device import Device, default_device
from repro.unionfind.ecl import EclUnionFind

#: Default pair-buffer target (pairs accumulated before one union-find
#: launch).  Roughly the batch a GPU needs to hide kernel-launch latency.
DEFAULT_PAIR_BUFFER = 1 << 16


def attach_border(
    uf: EclUnionFind,
    core_pts: np.ndarray,
    border_pts: np.ndarray,
    device: Device | None = None,
) -> None:
    """CAS-attach unlabeled non-core points to their core neighbour's cluster.

    For each pair, ``labels[border] = Find(core)`` iff ``labels[border]``
    still equals ``border`` (the "not yet a member of any cluster" check of
    Algorithm 3, line 9, folded into the CAS's expected value).  Losing
    requests — duplicates in the batch, or points attached by an earlier
    batch — fail the CAS and are dropped, which is precisely the behaviour
    that prevents cluster bridging through shared border points.
    """
    if core_pts.size == 0:
        return
    dev = default_device(device)
    reps = uf.find(core_pts)
    atomic_cas_batch(
        uf.parents,
        index=border_pts,
        expected=border_pts,
        desired=reps,
        counters=dev.counters,
    )


def resolve_pairs(
    uf: EclUnionFind,
    is_core: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    device: Device | None = None,
) -> None:
    """Apply Algorithm 3's per-edge resolution to a batch of pairs.

    ``x``/``y`` are equal-length arrays of point indices with
    ``dist(x, y) <= eps`` already established by the caller.  Each
    unordered pair needs to be presented only once (either orientation):
    both orientations of the core/non-core rule are applied here.
    """
    dev = default_device(device)
    dev.counters.add("pairs_processed", x.shape[0])
    cx = is_core[x]
    cy = is_core[y]
    both = cx & cy
    if both.any():
        uf.union(x[both], y[both])
    x_only = cx & ~cy
    if x_only.any():
        attach_border(uf, x[x_only], y[x_only], dev)
    y_only = cy & ~cx
    if y_only.any():
        attach_border(uf, y[y_only], x[y_only], dev)


class PairResolver:
    """Buffered, schedule-independent resolution of discovered pairs.

    A drop-in consumer for the pair stream the traversals emit:
    :meth:`add` takes each ``(x, y)`` batch (every unordered pair presented
    once, either orientation, ``dist <= eps`` already established) and
    :meth:`finalize` must be called once after the stream ends, before the
    labels are read.

    Two deliberate differences from streaming :func:`resolve_pairs`:

    - **buffering**: batches accumulate until ``buffer_pairs`` pairs are
      held, then one union-find launch consumes them all — per-step
      micro-batches stop paying the fixed launch overhead.
      ``buffer_pairs=None`` flushes on every ``add`` (the unbuffered
      ablation).  Core-core unions commute and the ECL union-find hooks
      the larger root under the smaller, so the final components — and
      therefore the labels — do not depend on batch boundaries.
    - **deterministic border attachment**: instead of first-wins CAS (a
      race whose winner depends on traversal schedule), every non-core
      endpoint records the *minimum* core-neighbour index seen across the
      whole stream (a commutative scatter-min, ``atomicMin`` on a GPU);
      :meth:`finalize` then CAS-attaches each pending border point to
      ``Find(min core neighbour)``.  Each border point is attached exactly
      once, so every CAS succeeds and the labels are identical for any
      arrival order — the bridging-prevention guarantee (one cluster per
      border point) is preserved.

    ``pairs_processed`` totals match the streaming path; ``cas_attempts``
    now counts one attempt per attached border point (the deterministic
    schedule has no losing requests).
    """

    def __init__(
        self,
        uf: EclUnionFind,
        is_core: np.ndarray,
        device: Device | None = None,
        buffer_pairs: int | None = DEFAULT_PAIR_BUFFER,
    ):
        self.uf = uf
        self.is_core = is_core
        self.dev = default_device(device)
        self.buffer_pairs = buffer_pairs
        n = is_core.shape[0]
        self._n = n
        #: per-point minimum core neighbour seen (sentinel ``n`` = none).
        self._border_min = np.full(n, n, dtype=np.int64)
        self.dev.memory.allocate(self._border_min.nbytes, "border", transient=True)
        self._buf_x: list[np.ndarray] = []
        self._buf_y: list[np.ndarray] = []
        self._buffered = 0
        self._finalized = False

    def add(self, x: np.ndarray, y: np.ndarray) -> None:
        """Buffer one batch of discovered pairs (flushing at the target).

        The arrays may be scratch views owned by the traversal — they are
        copied when held across calls.
        """
        if x.shape[0] == 0:
            return
        if self.buffer_pairs is None:
            self._resolve(np.asarray(x), np.asarray(y))
            return
        self._buf_x.append(np.array(x, dtype=np.int64, copy=True))
        self._buf_y.append(np.array(y, dtype=np.int64, copy=True))
        self._buffered += x.shape[0]
        if self._buffered >= self.buffer_pairs:
            self.flush()

    def flush(self) -> None:
        """Resolve every buffered pair now."""
        if not self._buffered:
            return
        if len(self._buf_x) == 1:
            x, y = self._buf_x[0], self._buf_y[0]
        else:
            x = np.concatenate(self._buf_x)
            y = np.concatenate(self._buf_y)
        self._buf_x.clear()
        self._buf_y.clear()
        self._buffered = 0
        self._resolve(x, y)

    def _resolve(self, x: np.ndarray, y: np.ndarray) -> None:
        dev = self.dev
        dev.counters.add("pairs_processed", x.shape[0])
        cx = self.is_core[x]
        cy = self.is_core[y]
        both = cx & cy
        if both.any():
            self.uf.union(x[both], y[both])
        x_only = cx & ~cy
        if x_only.any():
            np.minimum.at(self._border_min, y[x_only], x[x_only])
        y_only = cy & ~cx
        if y_only.any():
            np.minimum.at(self._border_min, x[y_only], y[y_only])

    def finalize(self) -> None:
        """Flush, then attach every pending border point.

        Idempotent; must run before the union-find's parents are turned
        into labels.
        """
        if self._finalized:
            return
        self.flush()
        self._finalized = True
        pending = np.flatnonzero(self._border_min < self._n)
        if pending.size:
            attach_border(self.uf, self._border_min[pending], pending, self.dev)
        self.dev.memory.free(self._border_min.nbytes, "border")
