"""Amortised multi-``minpts`` sweeps (Section 3.2).

The paper notes that early-terminated core counting is the wrong choice
"if one wants to execute a sweep over multiple values of minpts.  In the
latter case, it may be preferable to compute the full set |N_eps(x)|,
since that cost will be amortized for multiple minpts values."

:func:`dbscan_minpts_sweep` implements exactly that amortisation for the
tree algorithms:

1. build the search index **once**;
2. run **one** full (non-early-terminated) neighbour count, giving
   ``|N_eps(x)|`` for every point — core status for *every* ``minpts``
   value follows by thresholding;
3. run one main phase per requested ``minpts`` against the shared index.

For FDBSCAN the index and the counts are shared across the whole sweep;
only the main phases repeat.  (FDBSCAN-DenseBox's index *depends* on
``minpts`` — the dense-cell set changes — so a DenseBox sweep can share
the counts logic but not the tree; the function therefore always sweeps
with the FDBSCAN kernels and is exact for every value.)
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.bvh.aabb import boxes_from_points
from repro.bvh.builder import build_bvh
from repro.bvh.traversal import DEFAULT_CHUNK_SIZE, count_within, for_each_leaf_hit
from repro.core.framework import PairResolver
from repro.core.labels import DBSCANResult, finalize_clusters
from repro.core.validation import validate_params, validate_points
from repro.device.device import Device, default_device
from repro.unionfind.ecl import EclUnionFind


def dbscan_minpts_sweep(
    X: np.ndarray,
    eps: float,
    minpts_values: Sequence[int],
    device: Device | None = None,
    chunk_size: int | None = None,
) -> dict[int, DBSCANResult]:
    """Cluster ``X`` for every ``minpts`` in ``minpts_values`` with one
    index build and one full neighbour count.

    Returns a dict mapping each requested ``minpts`` to its
    :class:`~repro.core.labels.DBSCANResult`.  Each result is exactly what
    :func:`repro.core.fdbscan.fdbscan` would produce for that value
    (including the ``minpts <= 2`` special regimes).

    ``info`` of every result carries the shared ``t_build`` /
    ``t_count`` amortised costs plus its own ``t_main`` — the numbers that
    show where the amortisation wins.
    """
    X = validate_points(X)
    if not minpts_values:
        raise ValueError("minpts_values must be non-empty")
    canon = []
    for value in minpts_values:
        eps_v, mp = validate_params(eps, value)
        canon.append(mp)
    eps = eps_v
    dev = default_device(device)
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    n = X.shape[0]

    t0 = time.perf_counter()
    lo, hi = boxes_from_points(X)
    tree = build_bvh(lo, hi, device=dev)
    t_build = time.perf_counter() - t0

    # One full count serves every threshold (the amortisation).
    t0 = time.perf_counter()
    needs_counts = any(mp > 2 for mp in canon)
    counts = (
        count_within(tree, X, eps, stop_at=None, device=dev, chunk_size=chunk_size)
        if needs_counts
        else None
    )
    t_count = time.perf_counter() - t0

    order = tree.order
    results: dict[int, DBSCANResult] = {}
    for mp in canon:
        if mp in results:
            continue
        t0 = time.perf_counter()
        if mp == 2:
            is_core = None
            resolution_core = np.ones(n, dtype=bool)
        elif mp == 1:
            is_core = np.ones(n, dtype=bool)
            resolution_core = is_core
        else:
            is_core = counts >= mp
            resolution_core = is_core

        uf = EclUnionFind(n, device=dev)
        resolver = PairResolver(uf, resolution_core, device=dev)

        def on_hits(q_ids: np.ndarray, leaf_pos: np.ndarray) -> None:
            resolver.add(q_ids, order[leaf_pos])

        for_each_leaf_hit(
            tree,
            X,
            eps,
            on_hits,
            mask_positions=tree.position,
            device=dev,
            kernel_name=f"sweep_main_mp{mp}",
            chunk_size=chunk_size,
        )
        resolver.finalize()
        labels, core_mask, n_clusters = finalize_clusters(uf.parents, is_core, dev.counters)
        results[mp] = DBSCANResult(
            labels=labels,
            is_core=core_mask,
            n_clusters=n_clusters,
            info={
                "algorithm": "fdbscan-sweep",
                "n": n,
                "eps": eps,
                "min_samples": mp,
                "t_build": t_build,
                "t_count": t_count,
                "t_main": time.perf_counter() - t0,
                "core_counts_shared": needs_counts,
            },
        )
    return results
