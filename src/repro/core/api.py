"""Public clustering API.

:func:`dbscan` is the one-call entry point; :class:`DBSCAN` the
sklearn-style estimator wrapper.  Algorithm names accepted everywhere
(benchmarks address the baselines through the same registry):

===================  ====================================================
name                 implementation
===================  ====================================================
``"fdbscan"``        :func:`repro.core.fdbscan.fdbscan` (Section 4.1)
``"fdbscan-densebox"`` / ``"densebox"``
                     :func:`repro.core.densebox.fdbscan_densebox` (4.2)
``"auto"``           heuristic choice between the two (the paper's
                     future-work item, Section 6) — see
                     :func:`choose_algorithm`
``"gdbscan"``        :func:`repro.baselines.gdbscan.gdbscan`
``"cuda-dclust"``    :func:`repro.baselines.cuda_dclust.cuda_dclust`
``"dsdbscan"``       :func:`repro.baselines.dsdbscan.dsdbscan`
``"grid"``           :func:`repro.baselines.grid_dbscan.grid_dbscan`
                     (the cell-binary-search design Section 4.2 rejects)
``"sequential"``     :func:`repro.baselines.sequential_dbscan.sequential_dbscan`
``"brute"``          :func:`repro.baselines.brute.brute_dbscan`
===================  ====================================================
"""

from __future__ import annotations

import numpy as np

from repro.core.densebox import fdbscan_densebox
from repro.core.fdbscan import fdbscan
from repro.core.index import DBSCANIndex
from repro.core.labels import DBSCANResult
from repro.core.validation import validate_params, validate_points
from repro.device.device import Device
from repro.grid.grid import build_grid, compact_cells

#: Dense-cell point fraction above which the auto heuristic picks
#: FDBSCAN-DenseBox.  Calibrated on the paper's crossovers: Figure 6 shows
#: the two algorithms near-equal at ~13 % dense occupancy with FDBSCAN
#: winning below, while Figures 4 and 7 show DenseBox winning decisively
#: from ~50 % up; 0.25 splits the regimes.
AUTO_DENSE_FRACTION_THRESHOLD = 0.25


def dense_fraction_estimate(X: np.ndarray, eps: float, min_samples: int) -> float:
    """Fraction of points falling in dense grid cells.

    The quantity driving the FDBSCAN vs DenseBox trade-off; computed with
    one sort over cell ids (no tree, no primitives), so it is cheap enough
    to run ahead of clustering.
    """
    X = validate_points(X)
    eps, minpts = validate_params(eps, min_samples)
    grid = build_grid(X, eps)
    coords = grid.cell_coords(X)
    cell_of_point, _n_cells, _order, _starts, counts = compact_cells(grid, coords)
    return float((counts[cell_of_point] >= minpts).mean())


def choose_algorithm(X: np.ndarray, eps: float, min_samples: int) -> str:
    """The Section-6 switching heuristic: DenseBox when dense cells will
    absorb a substantial share of the points, FDBSCAN otherwise."""
    frac = dense_fraction_estimate(X, eps, min_samples)
    return "fdbscan-densebox" if frac >= AUTO_DENSE_FRACTION_THRESHOLD else "fdbscan"


def _baseline(name: str):
    # Imported lazily so `repro.core` does not hard-depend on scipy's
    # spatial module at import time.
    from repro import baselines

    return {
        "gdbscan": baselines.gdbscan,
        "cuda-dclust": baselines.cuda_dclust,
        "dsdbscan": baselines.dsdbscan,
        "grid": baselines.grid_dbscan,
        "sequential": baselines.sequential_dbscan,
        "brute": baselines.brute_dbscan,
    }[name]


def dbscan(
    X: np.ndarray,
    eps: float,
    min_samples: int,
    algorithm: str = "auto",
    device: Device | None = None,
    index: DBSCANIndex | None = None,
    **kwargs,
) -> DBSCANResult:
    """Cluster ``X`` with DBSCAN.

    Parameters
    ----------
    X:
        ``(n, d)`` points.  The tree-based algorithms require
        ``1 <= d <= 3`` (the paper's low-dimensional scope); baselines
        accept any ``d``.
    eps:
        Neighbourhood radius; neighbours satisfy ``dist(x, y) <= eps``.
    min_samples:
        Density threshold ``minpts`` (a point counts itself).
    algorithm:
        One of the registry names above (default ``"auto"``).
    device:
        Optional :class:`~repro.device.Device` for work counters, kernel
        timings and memory capping.
    index:
        Optional prebuilt :class:`~repro.core.index.DBSCANIndex` over
        ``X`` — only the tree-based algorithms (``"auto"``, ``"fdbscan"``,
        ``"fdbscan-densebox"``) accept one; passing it to a baseline
        raises.  The index each tree run used (built on the fly if none
        was given) is returned in ``result.info["index"]`` for reuse
        across parameter sweeps.
    kwargs:
        Forwarded to the implementation (e.g. ``use_mask`` / ``early_exit``
        for the tree algorithms).

    Returns
    -------
    :class:`~repro.core.labels.DBSCANResult`

    Examples
    --------
    >>> import numpy as np
    >>> from repro import dbscan
    >>> rng = np.random.default_rng(0)
    >>> X = np.vstack([rng.normal(0, .1, (50, 2)), rng.normal(5, .1, (50, 2))])
    >>> res = dbscan(X, eps=0.5, min_samples=5)
    >>> res.n_clusters
    2
    """
    name = algorithm.lower()
    if name == "auto":
        name = choose_algorithm(X, eps, min_samples)
    if name == "fdbscan":
        return fdbscan(X, eps, min_samples, device=device, index=index, **kwargs)
    if name in ("fdbscan-densebox", "densebox"):
        return fdbscan_densebox(X, eps, min_samples, device=device, index=index, **kwargs)
    try:
        impl = _baseline(name)
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of: auto, fdbscan, "
            "fdbscan-densebox, gdbscan, cuda-dclust, dsdbscan, grid, sequential, brute"
        ) from None
    if index is not None:
        raise ValueError(
            f"algorithm {algorithm!r} does not use a spatial index; "
            "index= is only valid for the tree-based algorithms"
        )
    return impl(X, eps, min_samples, device=device, **kwargs)


class DBSCAN:
    """Estimator-style wrapper around :func:`dbscan` (sklearn calling
    convention, so existing pipelines can swap implementations).

    Parameters mirror :func:`dbscan`; fitted attributes follow sklearn:
    ``labels_``, ``core_sample_indices_``, ``components_`` (the core
    points), ``n_clusters_`` plus this library's ``result_``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import DBSCAN
    >>> X = np.array([[0., 0.], [0., .1], [.1, 0.], [5., 5.]])
    >>> model = DBSCAN(eps=0.3, min_samples=3).fit(X)
    >>> model.labels_
    array([ 0,  0,  0, -1])
    """

    def __init__(
        self,
        eps: float = 0.5,
        min_samples: int = 5,
        algorithm: str = "auto",
        device: Device | None = None,
        **kwargs,
    ):
        self.eps = eps
        self.min_samples = min_samples
        self.algorithm = algorithm
        self.device = device
        self.kwargs = kwargs

    def fit(self, X: np.ndarray, sample_weight=None) -> "DBSCAN":
        """Cluster ``X`` (optionally weighted) and store the fitted
        attributes."""
        kwargs = dict(self.kwargs)
        if sample_weight is not None:
            kwargs["sample_weight"] = sample_weight
        result = dbscan(
            X,
            self.eps,
            self.min_samples,
            algorithm=self.algorithm,
            device=self.device,
            **kwargs,
        )
        self.result_ = result
        self.labels_ = result.labels
        self.core_sample_indices_ = np.flatnonzero(result.is_core)
        self.components_ = np.asarray(X, dtype=np.float64)[result.is_core]
        self.n_clusters_ = result.n_clusters
        return self

    def fit_predict(self, X: np.ndarray, sample_weight=None) -> np.ndarray:
        """Cluster ``X`` and return the labels."""
        return self.fit(X, sample_weight=sample_weight).labels_
