"""Cluster label semantics and finalisation.

Label conventions used throughout the repository (matching sklearn so
downstream users can drop the library in):

- ``labels[i] == -1``  — noise;
- ``labels[i] >= 0``   — consecutive cluster ids ``0 .. n_clusters - 1``,
  numbered by the smallest point index in each cluster (deterministic).

The raw output of the framework's main phase is the union-find ``parents``
array plus (for ``minpts > 2``) the core mask from the preprocessing
phase.  :func:`finalize_clusters` runs the paper's finalisation kernel and
converts to the public convention, including the two special regimes:

- ``minpts == 2`` skips the preprocessing phase entirely (Algorithm 3,
  line 2): any pair within ``eps`` proves both endpoints core, so
  core/noise status is recovered *after* the main phase from component
  sizes (singletons are noise, everything else core — the
  Friends-of-Friends regime);
- border points are exactly the non-core points whose label was CAS-
  attached during the main phase; non-core points still labelled by
  themselves are noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.unionfind.ecl import finalize_labels


@dataclass
class DBSCANResult:
    """Clustering output shared by every algorithm in the repository.

    Attributes
    ----------
    labels:
        ``(n,)`` int64 — consecutive cluster ids, -1 for noise.
    is_core:
        ``(n,)`` bool core-point mask.
    n_clusters:
        Number of clusters.
    info:
        Free-form per-run diagnostics (phase timings, dense-cell fraction,
        counters snapshot ...).
    """

    labels: np.ndarray
    is_core: np.ndarray
    n_clusters: int
    info: dict = field(default_factory=dict)

    @property
    def n_noise(self) -> int:
        """Number of noise points."""
        return int(np.count_nonzero(self.labels == -1))

    @property
    def n_border(self) -> int:
        """Number of border points (clustered but not core)."""
        return int(np.count_nonzero((self.labels >= 0) & ~self.is_core))

    def cluster_sizes(self) -> np.ndarray:
        """Size of each cluster, indexed by cluster id."""
        if self.n_clusters == 0:
            return np.zeros(0, dtype=np.int64)
        return np.bincount(self.labels[self.labels >= 0], minlength=self.n_clusters)


def relabel_consecutive(raw: np.ndarray, clustered_mask: np.ndarray) -> tuple[np.ndarray, int]:
    """Map raw representative labels to consecutive ids.

    ``raw`` holds an arbitrary representative per point; points where
    ``clustered_mask`` is ``False`` become -1.  Clusters are numbered in
    increasing order of their representative (= smallest member index,
    since the union-find hooks larger roots under smaller ones), which
    makes the numbering deterministic and independent of traversal order.
    """
    n = raw.shape[0]
    labels = np.full(n, -1, dtype=np.int64)
    reps = raw[clustered_mask]
    if reps.size:
        unique_reps = np.unique(reps)
        labels[clustered_mask] = np.searchsorted(unique_reps, reps)
        return labels, int(unique_reps.shape[0])
    return labels, 0


def finalize_clusters(
    parents: np.ndarray,
    is_core: np.ndarray | None,
    counters=None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Run the finalisation kernel and produce public labels.

    Parameters
    ----------
    parents:
        The union-find array after the main phase (mutated: flattened).
    is_core:
        Core mask from preprocessing, or ``None`` for the ``minpts == 2``
        regime where core status is derived from component sizes.

    Returns
    -------
    ``(labels, is_core, n_clusters)``
    """
    n = parents.shape[0]
    roots = finalize_labels(parents, counters)
    own = roots == np.arange(n, dtype=parents.dtype)
    if is_core is None:
        sizes = np.bincount(roots, minlength=n)
        is_core = sizes[roots] >= 2
        clustered = is_core
    else:
        is_core = np.asarray(is_core, dtype=bool)
        # Clustered = core points, plus non-core points that were attached
        # (their label moved off themselves during the main phase).
        clustered = is_core | ~own
    labels, n_clusters = relabel_consecutive(roots, clustered)
    return labels, is_core, n_clusters
