"""The paper's contribution: the GPU DBSCAN framework and both algorithms.

- :mod:`repro.core.framework` — the two-phase parallel disjoint-set
  framework (Section 3.2, Algorithm 3);
- :mod:`repro.core.fdbscan` — FDBSCAN (Section 4.1);
- :mod:`repro.core.densebox` — FDBSCAN-DenseBox (Section 4.2);
- :mod:`repro.core.api` — the public :func:`dbscan` / :class:`DBSCAN`
  entry points and the auto-switch heuristic (Section 6 future work);
- :mod:`repro.core.dbscan_star` — the DBSCAN* variant (Section 6);
- :mod:`repro.core.multi_minpts` — amortised multi-minpts sweeps (Section 3.2);
- :mod:`repro.core.periodic` — periodic-boundary DBSCAN (cosmology boxes);
- :mod:`repro.core.index` — the reusable spatial index for parameter sweeps;
- :mod:`repro.core.labels` — label conventions and finalisation.
"""

from repro.core.api import DBSCAN, choose_algorithm, dbscan, dense_fraction_estimate
from repro.core.dbscan_star import dbscan_star
from repro.core.densebox import fdbscan_densebox
from repro.core.fdbscan import fdbscan
from repro.core.index import DBSCANIndex
from repro.core.multi_minpts import dbscan_minpts_sweep
from repro.core.periodic import periodic_dbscan
from repro.core.labels import DBSCANResult

__all__ = [
    "DBSCAN",
    "DBSCANIndex",
    "DBSCANResult",
    "choose_algorithm",
    "dbscan",
    "dbscan_minpts_sweep",
    "dbscan_star",
    "dense_fraction_estimate",
    "fdbscan",
    "fdbscan_densebox",
    "periodic_dbscan",
]
