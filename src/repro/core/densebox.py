"""FDBSCAN-DenseBox — dense-cell aware fused DBSCAN (Section 4.2).

When ``|N_eps(x)| >> minpts``, most distance computations are provably
redundant.  FDBSCAN-DenseBox superimposes a grid of cell length
``eps / sqrt(d)`` (cell diameter ``eps``) over the domain: any cell with at
least ``minpts`` points — a *dense cell* — consists purely of core points
of one cluster.  The BVH is then built over a *mixed* primitive set:
isolated points plus one box per dense cell, which both shrinks the tree
and lets dense regions be resolved per-cell instead of per-point.

Phases:

1. **decompose** — grid, dense cells, mixed primitives
   (:func:`repro.grid.dense_cells.decompose`);
2. **preprocessing** — only isolated points need a core test; their
   batched traversal counts isolated-point hits directly and scans the
   members of hit dense boxes, terminating at ``minpts``;
3. **main phase** — (a) all points of each dense cell are unioned
   (they are one cluster by construction); (b) a batched traversal for
   *all* points resolves discovered objects: a point hit follows the
   standard core/border rule; a dense-box hit needs only *one* member
   within ``eps`` — a short-circuited scan, after which the query is
   unioned into (or, if non-core, attached to) the cell's cluster.

The pair-once mask generalises to the mixed tree: every query is masked by
the sorted position of *its own primitive* (its point, or its cell's box),
so object pairs are processed by exactly one side.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bvh.traversal import DEFAULT_CHUNK_SIZE, for_each_leaf_hit
from repro.core.framework import DEFAULT_PAIR_BUFFER, PairResolver
from repro.core.index import DBSCANIndex
from repro.core.labels import DBSCANResult, finalize_clusters
from repro.core.validation import validate_params, validate_points, validate_weights
from repro.device.device import Device, default_device
from repro.device.primitives import (
    concatenated_ranges,
    scatter_add,
    segment_ids_from_counts,
)
from repro.grid.dense_cells import DenseDecomposition
from repro.unionfind.ecl import EclUnionFind

_BIG = np.iinfo(np.int64).max


def _scan_boxes(
    X: np.ndarray,
    deco: DenseDecomposition,
    q_pts: np.ndarray,
    q_seg_ids: np.ndarray,
    box_ranks: np.ndarray,
    eps2: float,
):
    """Distance-test the members of hit dense boxes against their queries.

    ``q_pts`` are the query coordinates indexed by ``q_seg_ids`` per hit;
    ``box_ranks`` the dense rank of each hit box.  Returns
    ``(within, seg, members, first_slot, cnts)`` where ``within`` flags each
    expanded (query, member) test, ``seg`` maps tests back to hits,
    ``members`` are dataset indices, and ``first_slot`` is the position (in
    scan order) of the first member within ``eps`` per hit (or ``_BIG``).
    """
    starts, cnts = deco.dense_members(box_ranks)
    mem_slots = concatenated_ranges(starts, cnts)
    members = deco.members[mem_slots]
    seg = segment_ids_from_counts(cnts)
    diff = q_pts[q_seg_ids[seg]] - X[members]
    within = np.einsum("ij,ij->i", diff, diff) <= eps2
    pos_in_seg = np.arange(members.shape[0], dtype=np.int64) - np.repeat(
        np.cumsum(cnts) - cnts, cnts
    )
    cand = np.where(within, pos_in_seg, _BIG)
    first_slot = np.full(box_ranks.shape[0], _BIG, dtype=np.int64)
    np.minimum.at(first_slot, seg, cand)
    return within, seg, members, first_slot, cnts


def fdbscan_densebox(
    X: np.ndarray,
    eps: float,
    min_samples: int,
    device: Device | None = None,
    use_mask: bool = True,
    early_exit: bool = True,
    chunk_size: int | None = None,
    sample_weight=None,
    index: DBSCANIndex | None = None,
    query_order: str = "input",
    pair_buffer: int | None = DEFAULT_PAIR_BUFFER,
    traversal: str | None = None,
    watchdog=None,
    backend=None,
    cost_model=None,
) -> DBSCANResult:
    """Cluster ``X`` with FDBSCAN-DenseBox.

    Arguments match :func:`repro.core.fdbscan.fdbscan` (including the
    weighted-density ``sample_weight``: dense cells then threshold summed
    member weight, and the all-members-core guarantee carries over;
    ``query_order``/``pair_buffer``/``traversal``/``backend`` are the
    same output-preserving scheduling levers — both the isolated-point
    preprocessing and the mixed-primitive main traversal honour the
    chosen engine, and ``watchdog`` is polled per wavefront step in both
    traversals).  Under a parallel backend the early-exit preprocessing
    traversal stays serial (its ``finished_fn`` is stateful across
    chunks) while the main traversal fans out; labels and counters are
    bit-identical either way.
    ``info`` additionally carries ``dense_fraction`` (share of points
    inside dense cells — the regime indicator the paper reports),
    ``n_dense_cells`` and ``total_cells`` (the virtual grid size).

    A prebuilt ``index`` caches *dense decompositions + mixed trees* keyed
    by ``(eps, minpts, weights)`` — unlike FDBSCAN's parameter-free points
    tree, the DenseBox index depends on the parameters, so reuse only
    pays when the same cell is revisited (e.g. two algorithm aliases in a
    sweep).  Warm entries replay their recorded build cost onto
    ``device``; the index used is returned in ``info["index"]``.
    """
    X = validate_points(X)
    eps, minpts = validate_params(eps, min_samples)
    dev = default_device(device)
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    n = X.shape[0]
    eps2 = eps * eps
    info: dict = {"algorithm": "fdbscan-densebox", "n": n, "eps": eps, "min_samples": minpts}

    weights = None if sample_weight is None else validate_weights(sample_weight, n)

    # --- decomposition + tree over the mixed primitive set ------------------
    t0 = time.perf_counter()
    if index is None:
        index = DBSCANIndex(X)
    else:
        index.check_points(X)
    deco, tree, reused = index.dense_decomposition(
        eps, minpts, device=dev, sample_weight=weights
    )
    order = tree.order
    if traversal is None:
        traversal = index.traversal or "single"
    info["traversal"] = traversal
    if backend is None:
        backend = getattr(index, "backend", None)
    _bk = backend if backend is not None else getattr(dev, "backend", None)
    info["backend"] = getattr(_bk, "name", _bk) or "serial"
    # The cached Morton schedule is over the indexed points, so it serves
    # the main traversal (whose queries are exactly X); the preprocessing
    # traversal queries the isolated subset and schedules itself.  The
    # mixed tree's shape differs from the points tree's, so the auto
    # chooser runs on its generic depth estimate (tree_stats=None).
    main_morton = None
    if traversal in ("dual", "auto") or query_order == "morton":
        main_morton = index.morton_schedule(dev)
    if traversal == "auto":
        if cost_model is None:
            cost_model = getattr(index, "cost_model", None)
        auto_before = {
            k: dev.counters.extra.get(k, 0)
            for k in ("auto_single_chunks", "auto_dual_chunks", "auto_pred_cost_us")
        }
    t1 = time.perf_counter()
    info["t_build"] = t1 - t0
    info["index"] = index
    info["index_reused"] = reused
    info["dense_fraction"] = deco.dense_fraction()
    info["n_dense_cells"] = deco.n_dense
    info["total_cells"] = deco.grid.total_cells

    # --- preprocessing: core status ------------------------------------------
    is_core: np.ndarray | None
    if weights is None and minpts == 2:
        is_core = None
        resolution_core = np.ones(n, dtype=bool)
    else:
        is_core = np.zeros(n, dtype=bool)
        is_core[deco.is_dense_point] = True  # dense-cell points are core by construction
        if weights is None and minpts == 1:
            is_core[:] = True  # every point is its own neighbour
        elif deco.n_isolated:
            queries = X[deco.isolated_idx]
            counts = np.zeros(
                deco.n_isolated, dtype=np.int64 if weights is None else np.float64
            )

            def pre_hits(q_ids: np.ndarray, leaf_pos: np.ndarray) -> None:
                prim = order[leaf_pos]
                box = deco.prim_is_box[prim]
                pt_hits = ~box
                if pt_hits.any():
                    # A point-primitive hit already passed the (exact,
                    # degenerate-box) distance test; the query's own
                    # primitive contributes its self-count here.
                    if weights is None:
                        scatter_add(counts, q_ids[pt_hits], counters=dev.counters)
                    else:
                        scatter_add(
                            counts,
                            q_ids[pt_hits],
                            weights[deco.prim_point[prim[pt_hits]]],
                            counters=dev.counters,
                        )
                    dev.counters.add("distance_evals", int(pt_hits.sum()))
                if box.any():
                    qb = q_ids[box]
                    ranks = deco.prim_point[prim[box]]
                    within, seg, box_members, _first, _cnts = _scan_boxes(
                        X, deco, queries, qb, ranks, eps2
                    )
                    if weights is None:
                        scatter_add(counts, qb[seg], within, counters=dev.counters)
                    else:
                        scatter_add(
                            counts,
                            qb[seg],
                            within * weights[box_members],
                            counters=dev.counters,
                        )
                    dev.counters.add("distance_evals", int(within.shape[0]))

            finished_fn = None
            if early_exit:

                def finished_fn(ids: np.ndarray) -> np.ndarray:
                    return counts[ids] >= minpts

            for_each_leaf_hit(
                tree,
                queries,
                eps,
                pre_hits,
                finished_fn=finished_fn,
                device=dev,
                kernel_name="densebox_preprocess",
                leaf_test_is_distance=False,
                chunk_size=chunk_size,
                query_order=query_order,
                traversal=traversal,
                watchdog=watchdog,
                backend=backend,
                cost_model=cost_model,
            )
            is_core[deco.isolated_idx] = counts >= minpts
            if not early_exit:
                info["isolated_core_counts"] = counts
        resolution_core = is_core
    t2 = time.perf_counter()
    info["t_preprocess"] = t2 - t1

    # --- main phase ------------------------------------------------------------
    uf = EclUnionFind(n, device=dev)
    resolver = PairResolver(uf, resolution_core, device=dev, buffer_pairs=pair_buffer)

    # (a) union all points within each dense cell.
    if deco.n_dense:
        starts = deco.cell_starts[deco.dense_cells]
        cnts = deco.cell_counts[deco.dense_cells]
        firsts = deco.members[starts]
        rest = deco.members[concatenated_ranges(starts + 1, cnts - 1)]
        uf.union(np.repeat(firsts, cnts - 1), rest)

    # (b) batched traversal for every point against the mixed tree.
    mask_positions = None
    if use_mask:
        prim_of_point = np.empty(n, dtype=np.int64)
        prim_of_point[deco.isolated_idx] = np.arange(deco.n_isolated, dtype=np.int64)
        dense_pts = np.flatnonzero(deco.is_dense_point)
        prim_of_point[dense_pts] = deco.n_isolated + deco.dense_rank_of_cell[
            deco.cell_of_point[dense_pts]
        ]
        mask_positions = tree.position[prim_of_point]

    def main_hits(q_ids: np.ndarray, leaf_pos: np.ndarray) -> None:
        prim = order[leaf_pos]
        box = deco.prim_is_box[prim]
        pt_hits = ~box
        if pt_hits.any():
            nbr = deco.prim_point[prim[pt_hits]]
            q = q_ids[pt_hits]
            keep = nbr != q  # self-pairs only occur unmasked
            resolver.add(q[keep], nbr[keep])
            dev.counters.add("distance_evals", int(pt_hits.sum()))
        if box.any():
            qb = q_ids[box]
            ranks = deco.prim_point[prim[box]]
            # Skip the query's own cell (pre-unioned in step (a); only
            # reachable when the mask is disabled).
            own = deco.dense_rank_of_cell[deco.cell_of_point[qb]] == ranks
            if own.any():
                qb = qb[~own]
                ranks = ranks[~own]
            if qb.size == 0:
                return
            within, seg, members, first_slot, cnts = _scan_boxes(
                X, deco, X, qb, ranks, eps2
            )
            # Short-circuit emulation: the kernel scans each cell linearly
            # and stops at the first member within eps, so the work charged
            # is first-hit-position + 1 (or the full cell on a miss).
            has = first_slot != _BIG
            evals = np.where(has, first_slot + 1, cnts)
            dev.counters.add("distance_evals", int(evals.sum()))
            if not has.any():
                return
            q_hit = qb[has]
            member_starts = deco.dense_members(ranks[has])[0]
            first_member = deco.members[member_starts + first_slot[has]]
            # The member is a dense-cell point, hence core: a core query is
            # unioned into the cell's cluster, a non-core query becomes a
            # border candidate of it — both are exactly the resolver's
            # per-edge rule for a (query, core member) pair.
            resolver.add(q_hit, first_member)

    for_each_leaf_hit(
        tree,
        X,
        eps,
        main_hits,
        mask_positions=mask_positions,
        device=dev,
        kernel_name="densebox_main",
        leaf_test_is_distance=False,
        chunk_size=chunk_size,
        query_order=query_order,
        traversal=traversal,
        watchdog=watchdog,
        backend=backend,
        morton_schedule=main_morton,
        cost_model=cost_model,
    )
    resolver.finalize()
    t3 = time.perf_counter()
    info["t_main"] = t3 - t2
    if traversal == "auto":
        extra = dev.counters.extra
        info["auto"] = {
            "single_chunks": extra.get("auto_single_chunks", 0)
            - auto_before["auto_single_chunks"],
            "dual_chunks": extra.get("auto_dual_chunks", 0)
            - auto_before["auto_dual_chunks"],
            "pred_cost_seconds": (
                extra.get("auto_pred_cost_us", 0)
                - auto_before["auto_pred_cost_us"]
            )
            * 1e-6,
        }

    labels, core_mask, n_clusters = finalize_clusters(uf.parents, is_core, dev.counters)
    info["t_finalize"] = time.perf_counter() - t3
    return DBSCANResult(labels=labels, is_core=core_mask, n_clusters=n_clusters, info=info)
