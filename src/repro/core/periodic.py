"""DBSCAN under periodic boundary conditions (the cosmology setting).

The paper's 3-D experiment clusters one rank of a HACC snapshot —
cosmological simulations live in *periodic* boxes, and production halo
finding (Friends-of-Friends) uses the periodic metric: a halo spanning
the box boundary is one halo.  The paper's single-rank data sidesteps
this (the rank's sub-volume already carries boundary halos as extra
particles); this module provides the real thing for full-box data.

The construction mirrors the distributed halo exchange: every point
within ``eps`` of a box face is replicated as *image points* shifted by
the box period (up to ``2^d - 1`` images for corner points).  Clustering
the augmented set under the plain metric gives each point the exact
periodic neighbourhood (each wrapped neighbour appears exactly once,
as a real point or an image), so core status is exact.  Afterwards every
image is unioned with its original — sound, because they are the *same*
point, so any cluster containing the image legitimately contains the
original — and labels are read off the originals.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.api import dbscan
from repro.core.labels import DBSCANResult, relabel_consecutive
from repro.core.validation import validate_params, validate_points
from repro.device.device import Device
from repro.unionfind.sequential import SequentialUnionFind


def periodic_images(
    X: np.ndarray, box_size: np.ndarray, eps: float
) -> tuple[np.ndarray, np.ndarray]:
    """Image points for a periodic box.

    Returns ``(images, source)``: shifted copies of every point within
    ``eps`` of one or more box faces, and the original index of each
    image.  Points must lie in ``[0, box_size)`` per axis.
    """
    X = np.asarray(X, dtype=np.float64)
    n, d = X.shape
    box = np.broadcast_to(np.asarray(box_size, dtype=np.float64), (d,))
    if np.any(box <= 0):
        raise ValueError("box_size must be positive per axis")
    if 2 * eps >= box.min():
        raise ValueError(
            f"eps={eps} too large for the box (needs 2*eps < min box edge "
            f"{box.min()}: otherwise a point would neighbour its own image)"
        )
    if np.any(X < 0) or np.any(X >= box):
        raise ValueError("points must lie in [0, box_size) per axis")

    images = []
    sources = []
    # Per-axis shift options: -box (near the high face), +box (near the
    # low face), or 0; enumerate non-zero combinations.
    near_lo = X < eps
    near_hi = X >= box - eps
    for combo in itertools.product((-1, 0, 1), repeat=d):
        if not any(combo):
            continue
        mask = np.ones(n, dtype=bool)
        for axis, c in enumerate(combo):
            if c == 1:
                mask &= near_lo[:, axis]
            elif c == -1:
                mask &= near_hi[:, axis]
        if not mask.any():
            continue
        shift = np.array(combo, dtype=np.float64) * box
        images.append(X[mask] + shift)
        sources.append(np.flatnonzero(mask))
    if images:
        return np.concatenate(images), np.concatenate(sources).astype(np.int64)
    return np.zeros((0, d)), np.zeros(0, dtype=np.int64)


def periodic_dbscan(
    X: np.ndarray,
    eps: float,
    min_samples: int,
    box_size,
    algorithm: str = "auto",
    device: Device | None = None,
    **kwargs,
) -> DBSCANResult:
    """Cluster points in a periodic box with exact wrap-around semantics.

    ``box_size`` is a scalar or per-axis array; points must lie in
    ``[0, box_size)``.  Any algorithm in the registry can serve as the
    engine (it sees the augmented point set).  Core flags and noise are
    exact under the periodic metric; border assignment remains
    implementation-defined, as everywhere else.
    """
    X = validate_points(X)
    eps, minpts = validate_params(eps, min_samples)
    n = X.shape[0]
    images, source = periodic_images(X, box_size, eps)
    augmented = np.concatenate([X, images]) if images.size else X

    base = dbscan(
        augmented, eps, minpts, algorithm=algorithm, device=device, **kwargs
    )

    labels_aug = base.labels
    is_core = base.is_core[:n].copy()
    # Image core status backfills the original (identical neighbourhoods
    # under the periodic metric).
    is_core[source[base.is_core[n:]]] = True

    # Merge augmented clusters that share a *core* point with one of its
    # images: the point is literally the same point, so its clusters are
    # one periodic cluster.  Border points never merge clusters (they pick
    # one side, exactly as in the flat algorithm — no bridging).
    uf = SequentialUnionFind(n)
    rep_of_cluster: dict[int, int] = {}

    def union_core_into(cluster: int, point: int) -> None:
        if cluster in rep_of_cluster:
            uf.union(rep_of_cluster[cluster], point)
        else:
            rep_of_cluster[cluster] = point

    for idx in np.flatnonzero(is_core):
        if labels_aug[idx] >= 0:
            union_core_into(int(labels_aug[idx]), int(idx))
    for img_row, orig in enumerate(source):
        cluster = int(labels_aug[n + img_row])
        if cluster >= 0 and is_core[orig]:
            union_core_into(cluster, int(orig))

    # Border originals: keep the original copy's assignment, falling back
    # to an image's (possible when the CAS landed on the image).
    border_cluster = np.where(labels_aug[:n] >= 0, labels_aug[:n], -1)
    for img_row, orig in enumerate(source):
        cluster = int(labels_aug[n + img_row])
        if cluster >= 0 and border_cluster[orig] < 0:
            border_cluster[orig] = cluster

    clustered = is_core | (border_cluster >= 0)
    raw = np.full(n, -1, dtype=np.int64)
    for idx in np.flatnonzero(clustered):
        anchor = (
            int(idx)
            if is_core[idx]
            else rep_of_cluster[int(border_cluster[idx])]
        )
        raw[idx] = uf.find(anchor)
    labels, n_clusters = relabel_consecutive(raw, clustered)
    info = dict(base.info)
    info.update(
        variant="periodic",
        n=n,
        n_images=int(images.shape[0]),
        box_size=np.broadcast_to(np.asarray(box_size, dtype=np.float64), (X.shape[1],)).tolist(),
    )
    return DBSCANResult(labels=labels, is_core=is_core, n_clusters=n_clusters, info=info)
