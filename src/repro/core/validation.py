"""Input validation shared by every clustering entry point.

All algorithms in this package — the paper's and the baselines — accept
the same ``(X, eps, min_samples)`` triple and enforce the same contract,
so differential tests compare algorithms on identical admissible inputs
and every entry point fails identically on inadmissible ones.
"""

from __future__ import annotations

import numpy as np

#: Dimensions supported by the tree-based algorithms (the paper targets
#: "low-dimensional (e.g., spatial) data"; Morton codes cap this at 3).
MAX_TREE_DIM = 3


def validate_points(X: np.ndarray, max_dim: int | None = MAX_TREE_DIM) -> np.ndarray:
    """Validate and canonicalise a point set.

    Returns a C-contiguous float64 ``(n, d)`` array.  Rejects empty sets,
    wrong ranks, non-finite coordinates and (when ``max_dim`` is given)
    dimensions beyond the tree algorithms' supported range.
    """
    X = np.ascontiguousarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be a 2-D (n, d) array; got shape {X.shape}")
    n, d = X.shape
    if n == 0:
        raise ValueError("X must contain at least one point")
    if d == 0:
        raise ValueError("X must have at least one feature dimension")
    if max_dim is not None and d > max_dim:
        raise ValueError(
            f"tree-based algorithms support d <= {max_dim} (low-dimensional data); got d={d}"
        )
    if not np.isfinite(X).all():
        raise ValueError("X contains non-finite coordinates (nan or inf)")
    return X


def validate_params(eps: float, min_samples: int) -> tuple[float, int]:
    """Validate DBSCAN parameters; returns the canonical ``(eps, minpts)``."""
    eps = float(eps)
    if not np.isfinite(eps) or eps <= 0:
        raise ValueError(f"eps must be a positive finite float; got {eps}")
    if min_samples != int(min_samples):
        raise ValueError(f"min_samples must be an integer; got {min_samples}")
    min_samples = int(min_samples)
    if min_samples < 1:
        raise ValueError(f"min_samples must be >= 1; got {min_samples}")
    return eps, min_samples


def validate_weights(sample_weight, n: int) -> np.ndarray:
    """Validate per-point sample weights (the weighted-density extension).

    Weights must be positive and finite — a zero/negative weight has no
    DBSCAN meaning (drop the point instead).  Returns float64 ``(n,)``.
    """
    w = np.ascontiguousarray(sample_weight, dtype=np.float64)
    if w.shape != (n,):
        raise ValueError(f"sample_weight must be ({n},); got shape {w.shape}")
    if not np.isfinite(w).all() or np.any(w <= 0):
        raise ValueError("sample_weight entries must be positive and finite")
    return w
