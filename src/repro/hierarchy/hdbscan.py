"""HDBSCAN driver and the DBSCAN* hierarchy cut.

:func:`hdbscan` chains the pipeline — BVH core distances →
mutual-reachability MST → single-linkage dendrogram → condensed tree →
EOM extraction — and assigns labels/probabilities.

:func:`dbscan_star_cut` cuts the same hierarchy at a fixed ``eps``:
points with core distance above ``eps`` become noise, the remaining
points are connected through MST edges of weight ``<= eps``.  By the
minimax-path property of the MST this is *exactly* DBSCAN* (Campello et
al. 2013) — the fact the test suite uses to cross-validate the hierarchy
against the flat implementation built on the paper's framework.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.bvh.knn import core_distances
from repro.core.index import DBSCANIndex
from repro.core.labels import relabel_consecutive
from repro.core.validation import validate_params, validate_points
from repro.device.device import Device, default_device
from repro.hierarchy.boruvka import mutual_reachability_mst_boruvka
from repro.hierarchy.condense import (
    CondensedTree,
    condense_dendrogram,
    extract_eom_clusters,
)
from repro.hierarchy.mst import mutual_reachability_mst, single_linkage_dendrogram
from repro.unionfind.ecl import EclUnionFind

MST_ALGORITHMS = ("boruvka", "prim")


def _mreach_mst(
    X: np.ndarray,
    core: np.ndarray,
    tree,
    mst_algorithm: str,
    dev: Device,
    traversal: str,
    query_order: str,
) -> np.ndarray:
    """Dispatch to the requested mutual-reachability MST engine.

    Both engines return the same edge multiset up to tie-permutation
    (equal sorted weights, identical dendrogram heights); ``"boruvka"``
    streams through the BVH, ``"prim"`` is the O(n²) reference."""
    if mst_algorithm == "boruvka":
        return mutual_reachability_mst_boruvka(
            X,
            core,
            tree=tree,
            device=dev,
            traversal=traversal,
            query_order=query_order,
        )
    if mst_algorithm == "prim":
        return mutual_reachability_mst(X, core, device=dev)
    raise ValueError(
        f"mst_algorithm must be one of {MST_ALGORITHMS}; got {mst_algorithm!r}"
    )


@dataclass
class HDBSCANResult:
    """Output of a hierarchical run.

    ``labels`` follow the repository convention (consecutive ids, -1 for
    noise); ``probabilities`` are the reference library's membership
    strengths (0 for noise, 1 at the cluster's densest level).
    """

    labels: np.ndarray
    probabilities: np.ndarray
    n_clusters: int
    condensed_tree: CondensedTree
    stabilities: dict[int, float]
    info: dict = field(default_factory=dict)

    @property
    def n_noise(self) -> int:
        return int(np.count_nonzero(self.labels == -1))


def _labels_from_selection(
    tree: CondensedTree, chosen: list[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Assign each point to its lowest selected ancestor cluster."""
    n = tree.n_points
    labels = np.full(n, -1, dtype=np.int64)
    probabilities = np.zeros(n, dtype=np.float64)
    if not chosen:
        return labels, probabilities
    chosen_set = set(chosen)
    # condensed parent of every condensed cluster
    cluster_parent: dict[int, int] = {}
    for parent, child in zip(tree.parent, tree.child):
        if child >= n:
            cluster_parent[int(child)] = int(parent)
    # max lambda per chosen cluster (its densest level) for probabilities
    finite = tree.lambda_val[np.isfinite(tree.lambda_val)]
    cap = float(finite.max()) if finite.size else 1.0
    lam_capped = np.minimum(tree.lambda_val, cap)
    max_lambda: dict[int, float] = {c: 0.0 for c in chosen}

    point_rows = tree.child < n
    own_cluster = np.full(n, -1, dtype=np.int64)
    own_lambda = np.zeros(n, dtype=np.float64)
    own_cluster[tree.child[point_rows]] = tree.parent[point_rows]
    own_lambda[tree.child[point_rows]] = lam_capped[point_rows]

    # Resolve each point's membership by climbing to a chosen ancestor.
    resolve_cache: dict[int, int] = {}

    def chosen_ancestor(cluster: int) -> int:
        seen = []
        current = cluster
        while current != -1 and current not in resolve_cache:
            if current in chosen_set:
                resolve_cache[current] = current
                break
            seen.append(current)
            current = cluster_parent.get(current, -1)
        result = resolve_cache.get(current, -1)
        for c in seen:
            resolve_cache[c] = result
        return result

    for p in range(n):
        cluster = int(own_cluster[p])
        if cluster < 0:
            continue
        target = chosen_ancestor(cluster)
        if target == -1:
            continue
        labels[p] = target
        max_lambda[target] = max(max_lambda[target], float(own_lambda[p]))
    for p in range(n):
        if labels[p] >= 0:
            top = max_lambda[int(labels[p])]
            probabilities[p] = 1.0 if top <= 0 else min(own_lambda[p], top) / top
    final, n_clusters = relabel_consecutive(labels, labels >= 0)
    return final, probabilities if n_clusters else np.zeros(n)


def hdbscan(
    X: np.ndarray,
    min_cluster_size: int = 5,
    min_samples: int | None = None,
    allow_single_cluster: bool = False,
    device: Device | None = None,
    mst_algorithm: str = "boruvka",
    traversal: str | None = None,
    query_order: str = "input",
    index: DBSCANIndex | None = None,
    backend=None,
) -> HDBSCANResult:
    """Hierarchical density clustering over the paper's substrates.

    Parameters
    ----------
    X:
        ``(n, d)`` points, ``1 <= d <= 3`` (BVH scope).
    min_cluster_size:
        Smallest condensed cluster (>= 2).
    min_samples:
        Core-distance neighbour count (defaults to ``min_cluster_size``);
        the point itself counts, matching the rest of the repository.
    allow_single_cluster:
        Permit selecting the root cluster (all points one cluster).
    mst_algorithm:
        ``"boruvka"`` (BVH-accelerated, the default) or ``"prim"`` (O(n²)
        reference).  Both yield identical dendrogram heights up to
        tie-permutation.
    traversal:
        ``"single"``/``"dual"``/``"auto"`` wavefront engine for the
        core-distance and Borůvka traversals; ``None`` defers to the
        index's stored preference (default ``"single"``).
    query_order:
        ``"input"`` or ``"morton"`` traversal scheduling.
    index:
        Prebuilt :class:`~repro.core.index.DBSCANIndex` over ``X``; its
        points tree is reused so a sweep shares one build.
    backend:
        Execution backend (``"serial"``/``"process"``/instance); ``None``
        defers to the index's preference, then the device's.  Only the
        expanding-radius core-distance counting can fan out — the kNN
        gather and the Borůvka sweeps use stateful early-exit and
        component masks, so they stay serial under every backend; results
        are identical regardless.
    """
    X = validate_points(X)
    if min_cluster_size < 2:
        raise ValueError(f"min_cluster_size must be >= 2; got {min_cluster_size}")
    if min_samples is None:
        min_samples = min_cluster_size
    _, min_samples = validate_params(1.0, min_samples)
    dev = default_device(device)
    n = X.shape[0]
    if min_samples > n:
        raise ValueError(f"min_samples={min_samples} exceeds n={n}")
    t0 = time.perf_counter()

    if index is None:
        index = DBSCANIndex(X)
    else:
        index.check_points(X)
    tree, reused = index.points_tree(dev)
    if traversal is None:
        traversal = index.traversal or "single"
    if backend is None:
        backend = getattr(index, "backend", None)
    core = core_distances(
        tree,
        X,
        min_samples,
        device=dev,
        query_order=query_order,
        traversal=traversal,
        backend=backend,
    )
    t1 = time.perf_counter()
    mst = _mreach_mst(X, core, tree, mst_algorithm, dev, traversal, query_order)
    Z = single_linkage_dendrogram(mst, n)
    t2 = time.perf_counter()
    condensed = condense_dendrogram(Z, n, min_cluster_size)
    chosen, stabilities = extract_eom_clusters(condensed, allow_single_cluster)
    labels, probabilities = _labels_from_selection(condensed, chosen)
    n_clusters = int(labels.max()) + 1 if labels.size and labels.max() >= 0 else 0
    info = {
        "algorithm": "hdbscan",
        "n": n,
        "min_cluster_size": min_cluster_size,
        "min_samples": min_samples,
        "mst_algorithm": mst_algorithm,
        "traversal": traversal,
        "backend": getattr(backend, "name", backend) or "serial",
        "index": index,
        "index_reused": reused,
        "t_core": t1 - t0,
        "t_mst": t2 - t1,
        "t_extract": time.perf_counter() - t2,
    }
    return HDBSCANResult(
        labels=labels,
        probabilities=probabilities,
        n_clusters=n_clusters,
        condensed_tree=condensed,
        stabilities=stabilities,
        info=info,
    )


def dbscan_star_cut(
    X: np.ndarray,
    eps: float,
    min_samples: int,
    device: Device | None = None,
    mst_algorithm: str = "boruvka",
    traversal: str | None = None,
    query_order: str = "input",
    index: DBSCANIndex | None = None,
    backend=None,
) -> np.ndarray:
    """DBSCAN* labels obtained by cutting the density hierarchy at ``eps``.

    Semantically identical to
    :func:`repro.core.dbscan_star.dbscan_star(X, eps, min_samples)`
    (clusters of core points only; everything else noise), but computed
    through the mutual-reachability MST — the hierarchy view of the same
    object.  Returns the ``(n,)`` label array.
    """
    X = validate_points(X)
    eps, min_samples = validate_params(eps, min_samples)
    dev = default_device(device)
    n = X.shape[0]
    if index is None:
        index = DBSCANIndex(X)
    else:
        index.check_points(X)
    tree, _ = index.points_tree(dev)
    if traversal is None:
        traversal = index.traversal or "single"
    if backend is None:
        backend = getattr(index, "backend", None)
    core = core_distances(
        tree,
        X,
        min_samples,
        device=dev,
        query_order=query_order,
        traversal=traversal,
        backend=backend,
    )
    mst = _mreach_mst(X, core, tree, mst_algorithm, dev, traversal, query_order)

    eligible = core <= eps  # DBSCAN* core points
    uf = EclUnionFind(n, device=dev)
    use = mst[:, 2] <= eps
    a = mst[use, 0].astype(np.int64)
    b = mst[use, 1].astype(np.int64)
    keep = eligible[a] & eligible[b]
    uf.union(a[keep], b[keep])
    roots = uf.finalize()
    labels, _ = relabel_consecutive(roots, eligible)
    return labels
