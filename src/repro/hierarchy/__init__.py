"""Hierarchical density clustering — HDBSCAN on the paper's substrates.

Section 2.1 notes that DBSCAN* (clusters of core points only) "serv[es]
as a basis for a new hierarchical HDBSCAN algorithm", and Section 6 lists
incorporating such variants as future work.  This package builds the full
HDBSCAN pipeline (Campello, Moulavi & Sander 2013; McInnes & Healy 2017)
on the repository's substrates:

``repro.bvh.knn``
    core distances (distance to the ``min_samples``-th neighbour) via the
    batched expanding-radius BVH search;

``mst``
    the minimum spanning tree of the *mutual reachability* graph
    (``max(core(a), core(b), dist(a, b))``), computed with a vectorised
    Prim's algorithm using on-demand distance rows — O(n²) time, O(n)
    memory, no materialised graph (the same memory discipline as the
    paper's framework);

``condense``
    single-linkage dendrogram → condensed tree (``min_cluster_size``) →
    cluster stabilities → excess-of-mass cluster selection;

``hdbscan``
    the user-facing driver, plus :func:`~repro.hierarchy.hdbscan.dbscan_star_cut`,
    which cuts the hierarchy at a fixed ``eps`` — by the minimax-path
    property of MSTs this reproduces DBSCAN* exactly, which the test
    suite exploits as a cross-validation between the hierarchical and the
    flat implementations.
"""

from repro.hierarchy.boruvka import mutual_reachability_mst_boruvka
from repro.hierarchy.condense import CondensedTree, condense_dendrogram, extract_eom_clusters
from repro.hierarchy.hdbscan import MST_ALGORITHMS, HDBSCANResult, dbscan_star_cut, hdbscan
from repro.hierarchy.mst import mutual_reachability_mst, single_linkage_dendrogram

__all__ = [
    "MST_ALGORITHMS",
    "CondensedTree",
    "HDBSCANResult",
    "condense_dendrogram",
    "dbscan_star_cut",
    "extract_eom_clusters",
    "hdbscan",
    "mutual_reachability_mst",
    "mutual_reachability_mst_boruvka",
    "single_linkage_dendrogram",
]
