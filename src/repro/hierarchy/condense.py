"""Condensed tree, stabilities, and excess-of-mass cluster extraction.

Implements the HDBSCAN machinery of Campello et al. (2013) in the
formulation of the reference ``hdbscan`` library:

- **condense**: walk the single-linkage dendrogram from the root with a
  minimum cluster size; a split where both sides are large enough creates
  two new condensed clusters, otherwise the too-small side's points
  simply *fall out* of the current cluster at that level.  Levels are
  expressed as ``lambda = 1 / distance``;
- **stability** of a condensed cluster: ``sum((lambda_child - lambda_birth)
  * size_child)`` over its condensed rows — the "excess of mass" the
  cluster accumulates over its lifetime;
- **EOM selection**: bottom-up, keep a cluster iff its own stability
  exceeds the sum of its children's selected stabilities (the root is
  excluded unless ``allow_single_cluster``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CondensedTree:
    """The condensed hierarchy.

    Rows are edges ``parent -> child`` at level ``lambda`` with ``size``
    points: ``child`` is either another condensed cluster (``size > 1``
    possible) or an original point (ids ``< n_points``, ``size == 1``).
    Cluster ids start at ``n_points`` (the root cluster) — the reference
    library's convention.
    """

    n_points: int
    parent: np.ndarray
    child: np.ndarray
    lambda_val: np.ndarray
    size: np.ndarray

    @property
    def cluster_ids(self) -> np.ndarray:
        """All condensed cluster ids (root first)."""
        ids = np.unique(self.parent)
        return ids

    def children_of(self, cluster: int) -> np.ndarray:
        """Condensed *cluster* children of ``cluster``."""
        rows = (self.parent == cluster) & (self.child >= self.n_points)
        return self.child[rows].astype(np.int64)


def _subtree_points(Z: np.ndarray, n: int, node: int) -> list[int]:
    """Original points under a dendrogram node (iterative DFS)."""
    out: list[int] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if current < n:
            out.append(current)
        else:
            row = current - n
            stack.append(int(Z[row, 0]))
            stack.append(int(Z[row, 1]))
    return out


def condense_dendrogram(Z: np.ndarray, n: int, min_cluster_size: int = 5) -> CondensedTree:
    """Condense a single-linkage dendrogram.

    ``Z`` is the ``(n - 1, 4)`` linkage array of
    :func:`repro.hierarchy.mst.single_linkage_dendrogram`; merges must be
    sorted ascending by height (they are, by construction).
    """
    if min_cluster_size < 2:
        raise ValueError(f"min_cluster_size must be >= 2; got {min_cluster_size}")
    if n < 2:
        return CondensedTree(
            n_points=n,
            parent=np.zeros(0, dtype=np.int64),
            child=np.zeros(0, dtype=np.int64),
            lambda_val=np.zeros(0),
            size=np.zeros(0, dtype=np.int64),
        )
    parents: list[int] = []
    children: list[int] = []
    lambdas: list[float] = []
    sizes: list[int] = []

    def emit(parent: int, child: int, lam: float, size: int) -> None:
        parents.append(parent)
        children.append(child)
        lambdas.append(lam)
        sizes.append(size)

    def node_size(node: int) -> int:
        return 1 if node < n else int(Z[node - n, 3])

    root = 2 * n - 2
    next_cluster = n + 1
    # stack of (dendrogram node, condensed cluster id it belongs to)
    stack = [(root, n)]
    while stack:
        node, cluster = stack.pop()
        row = node - n
        left, right = int(Z[row, 0]), int(Z[row, 1])
        dist = Z[row, 2]
        lam = 1.0 / dist if dist > 0 else np.inf
        s_left, s_right = node_size(left), node_size(right)
        big_left = s_left >= min_cluster_size
        big_right = s_right >= min_cluster_size
        if big_left and big_right:
            for side, s_side in ((left, s_left), (right, s_right)):
                emit(cluster, next_cluster, lam, s_side)
                stack.append((side, next_cluster))
                next_cluster += 1
        elif big_left or big_right:
            keep, drop = (left, right) if big_left else (right, left)
            for p in _subtree_points(Z, n, drop):
                emit(cluster, p, lam, 1)
            stack.append((keep, cluster))
        else:
            for p in _subtree_points(Z, n, left):
                emit(cluster, p, lam, 1)
            for p in _subtree_points(Z, n, right):
                emit(cluster, p, lam, 1)
    return CondensedTree(
        n_points=n,
        parent=np.array(parents, dtype=np.int64),
        child=np.array(children, dtype=np.int64),
        lambda_val=np.array(lambdas, dtype=np.float64),
        size=np.array(sizes, dtype=np.int64),
    )


def cluster_stabilities(tree: CondensedTree) -> dict[int, float]:
    """Excess-of-mass stability per condensed cluster.

    ``lambda_birth`` of a cluster is the level of the row that created it
    (0 for the root); finite row levels only (infinite levels — duplicate
    points — contribute through a capped lambda to keep stabilities
    finite, matching the reference implementation's clipping).
    """
    birth: dict[int, float] = {int(tree.n_points): 0.0}
    finite = tree.lambda_val[np.isfinite(tree.lambda_val)]
    cap = float(finite.max()) if finite.size else 1.0
    lam = np.minimum(tree.lambda_val, cap)
    for parent, child, level in zip(tree.parent, tree.child, lam):
        if child >= tree.n_points:
            birth[int(child)] = float(level)
    stability: dict[int, float] = {}
    for parent, level, size in zip(tree.parent, lam, tree.size):
        parent = int(parent)
        stability[parent] = stability.get(parent, 0.0) + (
            float(level) - birth.get(parent, 0.0)
        ) * int(size)
    return stability


def extract_eom_clusters(
    tree: CondensedTree, allow_single_cluster: bool = False
) -> tuple[list[int], dict[int, float]]:
    """Excess-of-mass cluster selection.

    Returns ``(selected_cluster_ids, stabilities)``.  Selection is
    bottom-up: a cluster survives iff its stability beats the summed
    (propagated) stability of its condensed children; the root only
    participates when ``allow_single_cluster``.
    """
    stability = cluster_stabilities(tree)
    clusters = sorted(stability, reverse=True)  # children before parents
    selected: dict[int, bool] = {}
    propagated: dict[int, float] = {}
    for cluster in clusters:
        kids = tree.children_of(cluster)
        child_sum = float(sum(propagated.get(int(k), 0.0) for k in kids))
        own = stability[cluster]
        is_root = cluster == tree.n_points
        if is_root and not allow_single_cluster:
            selected[cluster] = False
            propagated[cluster] = child_sum
        elif own >= child_sum:
            selected[cluster] = True
            propagated[cluster] = own
        else:
            selected[cluster] = False
            propagated[cluster] = child_sum
    # Keep only the topmost selected cluster on every root-to-leaf path
    # (condensed ids increase downward, so ascending order visits parents
    # before children).
    chosen: list[int] = []
    blocked: set[int] = set()
    for cluster in sorted(selected):
        if cluster in blocked:
            continue
        if selected[cluster]:
            chosen.append(cluster)
            stack = list(tree.children_of(cluster))
            while stack:
                kid = int(stack.pop())
                blocked.add(kid)
                stack.extend(tree.children_of(kid))
    return chosen, stability
