"""Mutual-reachability MST and the single-linkage dendrogram.

The mutual reachability distance smooths the metric by each point's local
density: ``d_mreach(a, b) = max(core(a), core(b), dist(a, b))``.  Its
minimum spanning tree carries the *entire* density hierarchy: by the
minimax-path property, two points are connected at threshold ``eps`` in
the full mutual-reachability graph iff they are connected through MST
edges of weight ``<= eps``.

The MST is computed with Prim's algorithm over on-demand distance rows:
one row of plain distances per step, maxed with the core distances —
O(n²) work, O(n) live memory, nothing materialised (the same memory
discipline the paper's framework insists on for the flat algorithm).
"""

from __future__ import annotations

import numpy as np

from repro.device.device import Device, default_device


def mutual_reachability_mst(
    X: np.ndarray,
    core_dist: np.ndarray,
    device: Device | None = None,
) -> np.ndarray:
    """MST of the mutual reachability graph.

    Returns an ``(n - 1, 3)`` float64 array of rows ``(a, b, weight)``
    sorted ascending by weight (endpoint ids stored as floats).
    """
    dev = default_device(device)
    X = np.ascontiguousarray(X, dtype=np.float64)
    core_dist = np.asarray(core_dist, dtype=np.float64)
    n = X.shape[0]
    if core_dist.shape != (n,):
        raise ValueError(f"core_dist must be ({n},); got {core_dist.shape}")
    if n == 1:
        return np.zeros((0, 3), dtype=np.float64)

    in_tree = np.zeros(n, dtype=bool)
    best = np.full(n, np.inf)
    best_from = np.zeros(n, dtype=np.int64)
    edges = np.empty((n - 1, 3), dtype=np.float64)

    with dev.kernel("mreach_mst", threads=n) as launch:
        current = 0
        in_tree[0] = True
        for step in range(n - 1):
            # Relax against the vertex just added (one on-demand row).
            diff = X - X[current]
            dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            dev.counters.add("distance_evals", n)
            mreach = np.maximum(dist, np.maximum(core_dist, core_dist[current]))
            closer = mreach < best
            improve = closer & ~in_tree
            best[improve] = mreach[improve]
            best_from[improve] = current
            # Take the closest outside vertex.
            masked = np.where(in_tree, np.inf, best)
            nxt = int(np.argmin(masked))
            edges[step] = (best_from[nxt], nxt, best[nxt])
            in_tree[nxt] = True
            current = nxt
        launch.steps = n - 1

    order = np.argsort(edges[:, 2], kind="stable")
    return edges[order]


def single_linkage_dendrogram(mst_edges: np.ndarray, n: int) -> np.ndarray:
    """Dendrogram from weight-sorted MST edges (scipy linkage layout).

    Returns an ``(n - 1, 4)`` array whose row ``i`` merges nodes
    ``Z[i, 0]`` and ``Z[i, 1]`` (original points are ``0 .. n-1``, the
    merge result is node ``n + i``) at height ``Z[i, 2]``, producing a
    cluster of ``Z[i, 3]`` points.
    """
    if mst_edges.shape[0] != n - 1:
        raise ValueError(
            f"expected {n - 1} MST edges for {n} points; got {mst_edges.shape[0]}"
        )
    Z = np.empty((n - 1, 4), dtype=np.float64)
    # Union-find over points, tracking each set's current dendrogram node.
    parent = np.arange(2 * n - 1, dtype=np.int64)
    node_of_root = np.arange(n, dtype=np.int64)
    size = np.ones(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for i in range(n - 1):
        a, b, w = int(mst_edges[i, 0]), int(mst_edges[i, 1]), mst_edges[i, 2]
        ra, rb = find(a), find(b)
        if ra == rb:  # pragma: no cover - MST edges never cycle
            raise AssertionError("cycle in MST edge list")
        Z[i, 0] = node_of_root[ra]
        Z[i, 1] = node_of_root[rb]
        Z[i, 2] = w
        Z[i, 3] = size[ra] + size[rb]
        parent[rb] = ra
        node_of_root[ra] = n + i
        size[ra] += size[rb]
    return Z
