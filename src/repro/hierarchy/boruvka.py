"""BVH-accelerated Borůvka MST of the mutual-reachability graph.

Prim's loop (:mod:`repro.hierarchy.mst`) materialises one O(n) distance
row per added vertex — n·(n−1) distance evaluations regardless of the
data's geometry.  Borůvka's algorithm replaces that with tree-pruned
work: every round, each component finds its minimum-weight outgoing edge
and the components merge, so the component count at least halves and
O(log n) rounds suffice.  This is the shape ArborX uses for its
Euclidean-MST/HDBSCAN at exascale; here each round's "find my component's
nearest outside point" queries run as *batched wavefront traversals* with
the component mask of :func:`repro.bvh.traversal.for_each_leaf_hit`:

- per-node component summaries are refreshed bottom-up over the BVH
  levels (one ``np.where`` per level), so any subtree uniform in the
  query's component is pruned in one comparison instead of being
  descended;
- the nearest *outside* neighbour is found by the same expanding-radius
  machinery as :mod:`repro.bvh.knn`, warm-started per point (radii only
  ever need to grow across rounds, because merging components can only
  push the nearest outside point further away) and floored at the core
  distance (a mutual-reachability weight is never below it);
- candidate edges reduce under the strict total order ``(w, min(a,b),
  max(a,b))``, which makes the per-component choice unique even among
  tied weights — the classic Borůvka cycle-safety argument — and a
  Kruskal-style union pass (:class:`repro.unionfind.ecl.EclUnionFind`)
  guards the remaining duplicate picks.

Every minimum spanning tree of a graph has the same sorted weight
multiset (the exchange property), so the single-linkage dendrogram
heights obtained from this MST are *bit-equal* to the Prim's path —
the equivalence the test suite asserts.
"""

from __future__ import annotations

import numpy as np

from repro.bvh.aabb import boxes_from_points
from repro.bvh.builder import build_bvh
from repro.bvh.knn import _initial_radius
from repro.bvh.traversal import DEFAULT_CHUNK_SIZE, for_each_leaf_hit
from repro.bvh.tree import BVH
from repro.device.device import Device, default_device
from repro.unionfind.ecl import EclUnionFind

#: Hard cap on expanding-radius doublings within one nearest-outside
#: search; 100 doublings overshoot any float64 scene diameter.
_MAX_DOUBLINGS = 100

#: Traversal-launch groups allowed per sweep before exact component
#: bounds are snapped back to the radius ladder (launch overhead vs the
#: bound-overshoot trade; only early rounds with thousands of live
#: components ever exceed it).
_MAX_GROUPS = 48


def _ladder_up(values: np.ndarray, anchor: float) -> np.ndarray:
    """Snap positive values up to the ``anchor * 2**j`` ladder (j integer).

    Zeros stay zero (an exact-duplicate search radius).  Ladder values
    round-trip exactly: powers of two are exact in float64, so a value
    already of the form ``anchor * 2**j`` maps to itself.
    """
    out = np.zeros_like(values)
    pos = values > 0
    with np.errstate(divide="ignore"):
        j = np.ceil(np.log2(values[pos] / anchor))
    out[pos] = anchor * np.exp2(j)
    return out


def _refresh_node_components(
    tree: BVH, comp: np.ndarray, node_comp: np.ndarray
) -> None:
    """Bottom-up component summary: uniform id per subtree, -1 for mixed."""
    node_comp[tree.n_internal :] = comp[tree.order]
    for level in reversed(tree.levels):
        lc = node_comp[tree.left[level]]
        rc = node_comp[tree.right[level]]
        node_comp[level] = np.where(lc == rc, lc, -1)


def _component_nearest(
    tree: BVH,
    X: np.ndarray,
    comp: np.ndarray,
    node_comp: np.ndarray,
    core: np.ndarray,
    pts_pos: np.ndarray,
    core_pos: np.ndarray,
    radius: np.ndarray,
    anchor: float,
    dev: Device,
    chunk_size: int | None,
    query_order: str,
    traversal: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-point nearest *other-component* neighbour under mutual
    reachability, minimised by the strict order ``(w, min(a,b), max(a,b))``.

    ``radius`` is the per-point warm-start search radius for this round;
    it is doubled in place for unfinished points within the round.  It
    must be a *lower-bound-scale* start (candidate weight or covered
    radius from the previous round), never an overshoot: every launched
    radius is paid for in cross-component distance tests, so jumping a
    point straight to a scene-scale radius bypasses the component bound
    below and re-tests every cross pair each round.

    Two bounds terminate a point's search:

    - **own radius**: anything unseen lies strictly beyond the searched
      radius, so a found best within it is the point's true minimum;
    - **component bound**: once the point's component holds a candidate
      of weight ``W``, the search radius is *capped* at ``W`` — an edge
      that improves on (or ties) the component candidate satisfies
      ``dist <= w <= W``, so nothing beyond ``W`` can matter.  The cap
      keeps every tied edge reachable, which preserves the exact
      ``(w, u, v)`` lexicographic minimum (and with it the bit-equality
      to Prim's dendrogram).  This is the pruning lever that lets
      interior points of a large component stop almost immediately while
      only boundary points do real traversal work.

    Returns ``(best_w, best_b, best_u, best_v, cov)`` — ``cov`` is the
    radius each point actually covered, a certificate that no
    cross-component point lies within it (components only grow, so the
    certificate stays valid across rounds and seeds the next round's
    warm start for points that found no candidate).
    """
    n = X.shape[0]
    order_arr = tree.order
    best_w = np.full(n, np.inf)
    best_b = np.full(n, -1, dtype=np.int64)
    best_u = np.zeros(n, dtype=np.int64)
    best_v = np.zeros(n, dtype=np.int64)
    # Best candidate weight per component (indexed by component root id).
    comp_best = np.full(n, np.inf)
    # Radius each point has *covered* (seen every neighbour within); -1
    # until the first gather so even a zero-radius search (exact
    # duplicates across components) happens before the bound applies.
    cov = np.full(n, -1.0)
    pending = np.ones(n, dtype=bool)
    doublings = 0
    while True:
        bound = comp_best[comp]
        pending &= cov < bound
        rows_all = np.flatnonzero(pending)
        if rows_all.size == 0:
            break
        # Radii live on the power-of-two ladder (the batch splits into
        # O(log) traversal groups instead of one launch per distinct
        # float), but the component bound caps them at its EXACT value:
        # snapping the bound up a rung would search up to 2x past it, and
        # that overshoot is precisely where the cross pairs live — the
        # bound equals the minimum cross weight, so a bound-exact ball is
        # certified (near-)empty while its ladder rung can hold millions
        # of pairs between extended components.  Exact bounds add at most
        # one group per component still searching; when that explodes the
        # group count (early rounds: thousands of tiny components), those
        # rows fall back to the ladder rung, whose overshoot is cheap at
        # core-distance scale.
        eps_rows = np.minimum(_ladder_up(radius[rows_all], anchor), bound[rows_all])
        exact_bounds = np.unique(eps_rows).size <= _MAX_GROUPS
        if not exact_bounds:
            eps_rows = _ladder_up(
                np.minimum(radius[rows_all], bound[rows_all]), anchor
            )
        launched = np.zeros(rows_all.size, dtype=bool)
        for r in np.unique(eps_rows):
            in_group = np.flatnonzero(eps_rows == r)
            rows = rows_all[in_group]
            # Groups run in ascending radius, and bounds learned by the
            # smaller groups re-cap this one *just before launch*: a row
            # whose component bound has tightened below this group's
            # radius is deferred (un-launched, so its coverage and radius
            # stay put) and regrouped at the smaller ladder value on the
            # next sweep.  Without this, a warm-start radius carried over
            # from an earlier round — scene-scale for the interior of a
            # far-flung component — would launch wholesale even though the
            # first tiny cross edge of the sweep already bounded it.
            # The deferral test must quantize the bound exactly as the
            # grouping above did, or a row whose group radius was
            # ladder-snapped past its bound defers forever.
            b_now = comp_best[comp[rows]]
            if exact_bounds:
                eps_now = np.minimum(_ladder_up(radius[rows], anchor), b_now)
            else:
                eps_now = _ladder_up(np.minimum(radius[rows], b_now), anchor)
            use = (cov[rows] < b_now) & (eps_now >= r)
            rows = rows[use]
            if rows.size == 0:
                continue
            q_pts = X[rows]
            rcomp = comp[rows]
            # A launch that *discovers* the first candidates of a round
            # would otherwise pay for its full radius before the bound
            # exists (the pre-launch caps above only see bounds from
            # earlier launches).  Feed candidates into ``comp_best``
            # per batch and kill every in-flight query whose component
            # bound has dropped below this launch's radius: a killed
            # query gets NO coverage credit, so it re-enters the next
            # sweep and relaunches at the exact (now tiny) bound.
            killed = np.zeros(rows.shape[0], dtype=bool)

            def on_hits(q_ids: np.ndarray, leaf_pos: np.ndarray) -> None:
                gq = rows[q_ids.astype(np.int64)]
                b = order_arr[leaf_pos]
                diff = q_pts[q_ids] - pts_pos[leaf_pos]
                w = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                np.maximum(w, core[gq], out=w)
                np.maximum(w, core_pos[leaf_pos], out=w)
                u = np.minimum(gq, b)
                v = np.maximum(gq, b)
                # reduce to one candidate per query in this batch, then
                # merge into the running per-point minimum (idempotent, so
                # hits re-gathered after a radius doubling are harmless)
                sel = np.lexsort((v, u, w, gq))
                gqs = gq[sel]
                first = np.empty(gqs.shape[0], dtype=bool)
                first[0] = True
                np.not_equal(gqs[1:], gqs[:-1], out=first[1:])
                f = sel[first]
                tq, tw, tu, tv, tb = gq[f], w[f], u[f], v[f], b[f]
                bw, bu, bv = best_w[tq], best_u[tq], best_v[tq]
                better = (tw < bw) | (
                    (tw == bw) & ((tu < bu) | ((tu == bu) & (tv < bv)))
                )
                t = tq[better]
                best_w[t] = tw[better]
                best_b[t] = tb[better]
                best_u[t] = tu[better]
                best_v[t] = tv[better]
                np.minimum.at(comp_best, comp[tq], tw)

            # Kill only when the abort buys a strictly cheaper relaunch:
            # the next sweep would launch these rows at ``min(radius,
            # bound)`` quantized exactly as the grouping above, so a
            # bound that merely dropped within the same ladder rung is
            # not worth re-traversing for.  (Monotone in ``comp_best``,
            # as ``finished_fn`` requires.)
            rradius = radius[rows]

            def on_finished(ids: np.ndarray) -> np.ndarray:
                b = comp_best[rcomp[ids]]
                if exact_bounds:
                    kill = b < r
                else:
                    kill = _ladder_up(np.minimum(rradius[ids], b), anchor) < r
                killed[ids[kill]] = True
                return kill

            for_each_leaf_hit(
                tree,
                q_pts,
                float(r),
                on_hits,
                finished_fn=on_finished,
                device=dev,
                kernel_name="boruvka_nn",
                chunk_size=chunk_size,
                query_order=query_order,
                traversal=traversal,
                component_of=rcomp,
                node_components=node_comp,
            )
            launched[in_group[use]] = ~killed
        hit = rows_all[launched]
        cov[hit] = np.maximum(cov[hit], eps_rows[launched])
        # Double only points that actually searched this sweep, are still
        # unfinished, and whose own radius (not the component bound)
        # limited the search; a capped point re-checks the shrunken bound
        # next sweep and stops without another gather.  Checking the bound
        # *before* growing keeps the warm-start radius at each point's
        # needed scale instead of inflating it once per Borůvka round.
        still = cov[hit] < comp_best[comp[hit]]
        grew = still & (radius[hit] <= eps_rows[launched])
        radius[hit[grew]] *= 2.0
        doublings += 1
        if doublings > _MAX_DOUBLINGS:  # pragma: no cover - defensive
            raise RuntimeError("component-NN radius expansion failed to converge")
    return best_w, best_b, best_u, best_v, cov


def mutual_reachability_mst_boruvka(
    X: np.ndarray,
    core_dist: np.ndarray,
    tree: BVH | None = None,
    device: Device | None = None,
    traversal: str = "single",
    query_order: str = "input",
    chunk_size: int | None = DEFAULT_CHUNK_SIZE,
) -> np.ndarray:
    """Borůvka MST of the mutual reachability graph over a BVH.

    Drop-in replacement for
    :func:`repro.hierarchy.mst.mutual_reachability_mst`: returns the same
    ``(n - 1, 3)`` float64 rows ``(a, b, weight)`` sorted ascending by
    weight, with the identical sorted weight multiset (any two MSTs of a
    graph agree on it), at tree-pruned cost instead of n·(n−1) distance
    rows.

    Parameters
    ----------
    tree:
        Optional prebuilt point-leaf BVH over ``X`` (e.g. from
        :class:`repro.core.index.DBSCANIndex`); built on the fly when
        omitted.
    traversal / query_order / chunk_size:
        Scheduling knobs forwarded to the wavefront engine; results are
        identical for every setting.
    """
    dev = default_device(device)
    X = np.ascontiguousarray(X, dtype=np.float64)
    core_dist = np.asarray(core_dist, dtype=np.float64)
    n = X.shape[0]
    if core_dist.shape != (n,):
        raise ValueError(f"core_dist must be ({n},); got {core_dist.shape}")
    if n <= 1:
        return np.zeros((0, 3), dtype=np.float64)
    if tree is None:
        lo, hi = boxes_from_points(X)
        tree = build_bvh(lo, hi, device=dev)
    if tree.n_primitives != n:
        raise ValueError(
            f"tree has {tree.n_primitives} primitives; expected {n} points"
        )

    order_arr = tree.order
    pts_pos = X[order_arr]
    core_pos = core_dist[order_arr]
    node_comp = np.empty(tree.node_lo.shape[0], dtype=np.int64)
    uf = EclUnionFind(n, device=dev)
    edges = np.empty((n - 1, 3), dtype=np.float64)
    n_edges = 0
    ids = np.arange(n, dtype=np.int64)
    # Warm-start radii: a mutual-reachability weight is never below the
    # point's own core distance, and the ``min_samples``-th neighbour sits
    # exactly at it, so ``core`` is both a lower bound on the answer and a
    # radius already known to contain neighbours.  Zero cores (duplicate
    # points) fall back to the scene-density estimate.  All radii live on
    # the ``r0 * 2**j`` ladder so batches group into few traversals.
    #
    # Across rounds the warm start is recomputed per point rather than
    # carried as a monotonically doubled radius: a point that found a
    # candidate restarts at that candidate's weight (a lower bound on its
    # next answer — merging only pushes the nearest outside point away),
    # and a point that found nothing restarts at the radius it *covered*
    # (re-searching a certified-empty ball costs box tests but zero
    # distance tests, because cross-component sets only shrink).  Carrying
    # grown radii instead lets a far-flung component's interior jump
    # straight to scene scale in the round after a merge, re-testing every
    # cross pair before the round's much smaller bound is discovered.
    r0 = _initial_radius(tree, 2)
    radius = _ladder_up(np.where(core_dist > 0, core_dist, r0), r0)

    with dev.kernel("boruvka_mst", threads=n) as launch:
        rounds = 0
        while n_edges < n - 1:
            rounds += 1
            dev.counters.add("boruvka_rounds", 1)
            comp = uf.find(ids)
            _refresh_node_components(tree, comp, node_comp)
            best_w, best_b, best_u, best_v, cov = _component_nearest(
                tree,
                X,
                comp,
                node_comp,
                core_dist,
                pts_pos,
                core_pos,
                radius,
                r0,
                dev,
                chunk_size,
                query_order,
                traversal,
            )
            radius = _ladder_up(np.where(best_b >= 0, best_w, cov), r0)
            # Points stopped by the component bound may hold no candidate
            # of their own; every component still holds at least one (its
            # bound is finite only once a member found an edge).
            idx = np.flatnonzero(best_b >= 0)
            if idx.size == 0:  # pragma: no cover - defensive
                raise RuntimeError("no component found an outside neighbour")
            # One candidate per component: minimum under (w, u, v).
            csel = idx[np.lexsort((best_v[idx], best_u[idx], best_w[idx], comp[idx]))]
            comp_sorted = comp[csel]
            first = np.empty(comp_sorted.shape[0], dtype=bool)
            first[0] = True
            np.not_equal(comp_sorted[1:], comp_sorted[:-1], out=first[1:])
            cand = csel[first]
            # Union in ascending (w, u, v); the strict total order plus the
            # root check makes tied weights cycle-safe.
            gsel = np.lexsort((best_v[cand], best_u[cand], best_w[cand]))
            added = 0
            for i in cand[gsel]:
                a = int(i)
                b = int(best_b[i])
                ends = uf.find(np.array([a, b], dtype=np.int64))
                if ends[0] == ends[1]:
                    continue
                edges[n_edges] = (a, b, best_w[i])
                n_edges += 1
                added += 1
                uf.union(np.array([a]), np.array([b]))
            if added == 0:  # pragma: no cover - defensive
                raise RuntimeError("Borůvka round added no edges")
        launch.steps = rounds

    order = np.argsort(edges[:, 2], kind="stable")
    return edges[order]
