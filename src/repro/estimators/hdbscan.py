"""Drop-in ``HDBSCAN`` estimator over the hierarchy pipeline."""

from __future__ import annotations

from numbers import Integral

import numpy as np

from repro.device.device import Device
from repro.estimators.base import BaseEstimator, Interval, StrOptions
from repro.hierarchy.hdbscan import hdbscan as _hdbscan_fn


class HDBSCAN(BaseEstimator):
    """Hierarchical DBSCAN, sklearn-compatible.

    A drop-in replacement for :class:`sklearn.cluster.HDBSCAN` driving
    :func:`repro.hierarchy.hdbscan`: BVH core distances → BVH-Borůvka
    mutual-reachability MST → condensed tree → excess-of-mass selection.

    Parameters
    ----------
    min_cluster_size:
        Smallest condensed cluster (>= 2).
    min_samples:
        Core-distance neighbour count (defaults to ``min_cluster_size``);
        the point itself counts.
    allow_single_cluster:
        Permit selecting the root cluster.
    metric:
        Only ``"euclidean"`` (the paper's scope).
    mst_algorithm:
        ``"boruvka"`` (BVH-accelerated, default) or ``"prim"`` (O(n²)
        reference); identical dendrogram heights up to tie-permutation.
    traversal:
        ``"single"``/``"dual"`` wavefront engine for the core-distance
        and Borůvka traversals; ``None`` = engine default.
    query_order:
        ``"input"`` or ``"morton"`` traversal scheduling.
    device:
        Optional :class:`~repro.device.Device` for counters/tracing.

    Attributes
    ----------
    labels_ : ``(n,)`` int64, ``-1`` for noise.
    probabilities_ : ``(n,)`` float64 in [0, 1]; 0 for noise.
    n_clusters_, n_features_in_ : ints.
    result_ : the underlying :class:`~repro.hierarchy.hdbscan.HDBSCANResult`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.estimators import HDBSCAN
    >>> rng = np.random.default_rng(0)
    >>> X = np.vstack([rng.normal(0, .1, (40, 2)), rng.normal(5, .1, (40, 2))])
    >>> HDBSCAN(min_cluster_size=10).fit(X).n_clusters_
    2
    """

    _parameter_constraints = {
        "min_cluster_size": [Interval(Integral, 2, None, closed="left")],
        "min_samples": [Interval(Integral, 1, None, closed="left"), None],
        "allow_single_cluster": [bool],
        "metric": [StrOptions({"euclidean"})],
        "mst_algorithm": [StrOptions({"boruvka", "prim"})],
        "traversal": [StrOptions({"single", "dual"}), None],
        "query_order": [StrOptions({"input", "morton"})],
        "device": [Device, None],
    }

    def __init__(
        self,
        min_cluster_size: int = 5,
        min_samples: int | None = None,
        allow_single_cluster: bool = False,
        metric: str = "euclidean",
        mst_algorithm: str = "boruvka",
        traversal: str | None = None,
        query_order: str = "input",
        device: Device | None = None,
    ):
        self.min_cluster_size = min_cluster_size
        self.min_samples = min_samples
        self.allow_single_cluster = allow_single_cluster
        self.metric = metric
        self.mst_algorithm = mst_algorithm
        self.traversal = traversal
        self.query_order = query_order
        self.device = device

    def fit(self, X: np.ndarray, y=None) -> "HDBSCAN":
        """Cluster ``X`` and store ``labels_`` / ``probabilities_``.
        ``y`` is ignored (sklearn API compatibility)."""
        self._validate_params()
        result = _hdbscan_fn(
            X,
            min_cluster_size=self.min_cluster_size,
            min_samples=self.min_samples,
            allow_single_cluster=self.allow_single_cluster,
            device=self.device,
            mst_algorithm=self.mst_algorithm,
            traversal=self.traversal,
            query_order=self.query_order,
        )
        X = np.asarray(X, dtype=np.float64)
        self.result_ = result
        self.labels_ = result.labels
        self.probabilities_ = result.probabilities
        self.n_clusters_ = result.n_clusters
        self.n_features_in_ = int(X.shape[1]) if X.ndim == 2 else 1
        return self

    def fit_predict(self, X: np.ndarray, y=None) -> np.ndarray:
        """Cluster ``X`` and return the labels."""
        return self.fit(X, y=y).labels_
