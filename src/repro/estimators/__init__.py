"""sklearn-compatible estimator facade.

``repro.estimators.DBSCAN`` and ``repro.estimators.HDBSCAN`` are drop-in
replacements for their :mod:`sklearn.cluster` counterparts — same
constructor discipline (store-only ``__init__``, validation deferred to
``fit`` with sklearn's error wording), same ``get_params``/``set_params``
protocol, same fitted attributes — backed by the repository's BVH
engines.  Engine-specific knobs (``algorithm=``, ``mst_algorithm=``,
``traversal=``, ``query_order=``, ``device=``) pass straight through to
the underlying drivers.  See ``docs/estimators.md``.
"""

from repro.estimators.base import BaseEstimator, Interval, StrOptions
from repro.estimators.dbscan import DBSCAN
from repro.estimators.hdbscan import HDBSCAN

__all__ = ["BaseEstimator", "DBSCAN", "HDBSCAN", "Interval", "StrOptions"]
