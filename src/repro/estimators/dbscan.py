"""Drop-in ``DBSCAN`` estimator over the repository's engines."""

from __future__ import annotations

from numbers import Integral, Real

import numpy as np

from repro.core.api import dbscan as _dbscan_fn
from repro.device.device import Device
from repro.estimators.base import BaseEstimator, Interval, StrOptions

#: Algorithms that stream through the BVH and accept ``traversal=`` /
#: ``query_order=``; everything else is a baseline with neither knob.
TREE_ALGORITHMS = {"auto", "fdbscan", "fdbscan-densebox", "densebox"}


class DBSCAN(BaseEstimator):
    """Density-Based Spatial Clustering of Applications with Noise.

    A drop-in replacement for :class:`sklearn.cluster.DBSCAN` running on
    this repository's tree-based engines: same constructor discipline
    (store-only ``__init__``, fit-time validation), same fitted
    attributes (``labels_``, ``core_sample_indices_``, ``components_``),
    same error wording for bad parameters.

    Parameters
    ----------
    eps:
        Neighbourhood radius (``dist <= eps``); a float in (0, inf).
    min_samples:
        Density threshold; the point itself counts.
    metric:
        Only ``"euclidean"`` (the paper's scope).
    algorithm:
        Engine registry name (see :func:`repro.core.api.dbscan`);
        ``"auto"`` applies the Section-6 switching heuristic.
    traversal:
        ``"single"``/``"dual"`` wavefront engine for tree algorithms;
        ``None`` defers to the engine default.
    query_order:
        ``"input"`` or ``"morton"`` traversal scheduling.
    device:
        Optional :class:`~repro.device.Device` for counters/tracing.

    Attributes
    ----------
    labels_ : ``(n,)`` int64, ``-1`` for noise.
    core_sample_indices_ : indices of core points.
    components_ : ``(n_core, d)`` copies of the core points.
    n_clusters_, n_features_in_ : ints.
    result_ : the underlying :class:`~repro.core.labels.DBSCANResult`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.estimators import DBSCAN
    >>> X = np.array([[0., 0.], [0., .1], [.1, 0.], [5., 5.]])
    >>> DBSCAN(eps=0.3, min_samples=3).fit_predict(X)
    array([ 0,  0,  0, -1])
    """

    _parameter_constraints = {
        "eps": [Interval(Real, 0.0, None, closed="neither")],
        "min_samples": [Interval(Integral, 1, None, closed="left")],
        "metric": [StrOptions({"euclidean"})],
        "algorithm": [
            StrOptions(
                TREE_ALGORITHMS
                | {"gdbscan", "cuda-dclust", "dsdbscan", "grid", "sequential", "brute"}
            )
        ],
        "traversal": [StrOptions({"single", "dual"}), None],
        "query_order": [StrOptions({"input", "morton"})],
        "device": [Device, None],
    }

    def __init__(
        self,
        eps: float = 0.5,
        min_samples: int = 5,
        metric: str = "euclidean",
        algorithm: str = "auto",
        traversal: str | None = None,
        query_order: str = "input",
        device: Device | None = None,
    ):
        self.eps = eps
        self.min_samples = min_samples
        self.metric = metric
        self.algorithm = algorithm
        self.traversal = traversal
        self.query_order = query_order
        self.device = device

    def fit(self, X: np.ndarray, y=None, sample_weight=None) -> "DBSCAN":
        """Cluster ``X`` (optionally weighted) and store the fitted
        attributes.  ``y`` is ignored (sklearn API compatibility)."""
        self._validate_params()
        kwargs: dict = {}
        if self.algorithm in TREE_ALGORITHMS:
            kwargs["traversal"] = self.traversal
            kwargs["query_order"] = self.query_order
        elif self.traversal is not None or self.query_order != "input":
            raise ValueError(
                f"traversal/query_order are tree-engine knobs; algorithm "
                f"{self.algorithm!r} accepts neither"
            )
        if sample_weight is not None:
            kwargs["sample_weight"] = sample_weight
        result = _dbscan_fn(
            X,
            self.eps,
            self.min_samples,
            algorithm=self.algorithm,
            device=self.device,
            **kwargs,
        )
        X = np.asarray(X, dtype=np.float64)
        self.result_ = result
        self.labels_ = result.labels
        self.core_sample_indices_ = np.flatnonzero(result.is_core)
        self.components_ = X[result.is_core].copy()
        self.n_clusters_ = result.n_clusters
        self.n_features_in_ = int(X.shape[1]) if X.ndim == 2 else 1
        return self

    def fit_predict(self, X: np.ndarray, y=None, sample_weight=None) -> np.ndarray:
        """Cluster ``X`` and return the labels."""
        return self.fit(X, y=y, sample_weight=sample_weight).labels_
