"""Estimator plumbing: sklearn's calling convention without sklearn.

The estimators in this package are *drop-in* replacements for their
scikit-learn counterparts, so they reproduce the two contracts sklearn
pipelines rely on besides ``fit``/``fit_predict``:

``get_params`` / ``set_params``
    Parameter introspection driven by the ``__init__`` signature (the
    clone/grid-search protocol).  :class:`BaseEstimator` implements both
    from the signature alone — subclasses only write ``__init__`` storing
    each argument verbatim on ``self``.

parameter validation
    Deferred to ``fit`` (sklearn validates at fit time, never in
    ``__init__``) and phrased exactly like sklearn's
    ``InvalidParameterError`` messages::

        The 'eps' parameter of DBSCAN must be a float in the range
        (0.0, inf). Got -1 instead.

    Constraints are declared per class in ``_parameter_constraints`` as
    lists of :class:`Interval` / :class:`StrOptions` / type / ``None``
    alternatives, mirroring sklearn's ``_param_validation`` vocabulary.
"""

from __future__ import annotations

import inspect
from numbers import Integral, Real


class Interval:
    """Numeric range constraint, sklearn-style.

    ``Interval(Real, 0, None, closed="neither")`` reads "a float in the
    range (0.0, inf)".  ``type`` is :class:`numbers.Real` or
    :class:`numbers.Integral`; ``closed`` one of ``"left"``, ``"right"``,
    ``"both"``, ``"neither"``.
    """

    def __init__(self, type, left, right, *, closed="left"):
        self.type = type
        self.left = left
        self.right = right
        self.closed = closed

    def is_satisfied_by(self, value) -> bool:
        if not isinstance(value, self.type) or isinstance(value, bool):
            return False
        left_ok = (
            self.left is None
            or (value >= self.left if self.closed in ("left", "both") else value > self.left)
        )
        right_ok = (
            self.right is None
            or (value <= self.right if self.closed in ("right", "both") else value < self.right)
        )
        return bool(left_ok and right_ok)

    def __str__(self) -> str:
        kind = "an int" if self.type is Integral else "a float"
        lb = "[" if self.closed in ("left", "both") else "("
        rb = "]" if self.closed in ("right", "both") else ")"
        left = "-inf" if self.left is None else repr(
            float(self.left) if self.type is Real else self.left
        )
        right = "inf" if self.right is None else repr(
            float(self.right) if self.type is Real else self.right
        )
        return f"{kind} in the range {lb}{left}, {right}{rb}"


class StrOptions:
    """Categorical string constraint: one of a fixed set of options."""

    def __init__(self, options: set[str]):
        self.options = set(options)

    def is_satisfied_by(self, value) -> bool:
        return isinstance(value, str) and value in self.options

    def __str__(self) -> str:
        opts = sorted(self.options)
        quoted = [repr(o) for o in opts]
        if len(quoted) == 1:
            return f"a str among {{{quoted[0]}}}"
        return "a str among {" + ", ".join(quoted[:-1]) + " or " + quoted[-1] + "}"


def _constraint_str(constraint) -> str:
    if constraint is None:
        return "None"
    if isinstance(constraint, (Interval, StrOptions)):
        return str(constraint)
    if isinstance(constraint, type):
        return f"an instance of {constraint.__qualname__!r}"
    return str(constraint)


def _satisfies(value, constraint) -> bool:
    if constraint is None:
        return value is None
    if isinstance(constraint, (Interval, StrOptions)):
        return constraint.is_satisfied_by(value)
    if isinstance(constraint, type):
        return isinstance(value, constraint)
    raise TypeError(f"unsupported constraint {constraint!r}")


def validate_parameter_constraints(constraints: dict, params: dict, caller_name: str) -> None:
    """Raise ``ValueError`` (sklearn's ``InvalidParameterError`` wording)
    for the first parameter violating every one of its alternatives."""
    for name, alternatives in constraints.items():
        if name not in params:
            continue
        value = params[name]
        if any(_satisfies(value, c) for c in alternatives):
            continue
        descs = [_constraint_str(c) for c in alternatives]
        if len(descs) == 1:
            desc = descs[0]
        else:
            desc = ", ".join(descs[:-1]) + f" or {descs[-1]}"
        raise ValueError(
            f"The {name!r} parameter of {caller_name} must be {desc}. "
            f"Got {value!r} instead."
        )


class BaseEstimator:
    """Minimal sklearn ``BaseEstimator``: signature-driven ``get_params``
    / ``set_params`` plus fit-time constraint validation."""

    _parameter_constraints: dict = {}

    @classmethod
    def _get_param_names(cls) -> list[str]:
        sig = inspect.signature(cls.__init__)
        return sorted(
            p.name
            for p in sig.parameters.values()
            if p.name != "self" and p.kind is not p.VAR_KEYWORD
        )

    def get_params(self, deep: bool = True) -> dict:
        """Parameter name → current value, from the ``__init__`` signature."""
        return {name: getattr(self, name) for name in self._get_param_names()}

    def set_params(self, **params) -> "BaseEstimator":
        """Set parameters by keyword; unknown names raise ``ValueError``
        (sklearn's wording) so typos never pass silently."""
        valid = set(self._get_param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"Invalid parameter {name!r} for estimator {self!r}. "
                    f"Valid parameters are: {sorted(valid)!r}."
                )
            setattr(self, name, value)
        return self

    def _validate_params(self) -> None:
        validate_parameter_constraints(
            self._parameter_constraints,
            self.get_params(deep=False),
            type(self).__name__,
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{k}={v!r}" for k, v in sorted(self.get_params(deep=False).items())
        )
        return f"{type(self).__name__}({parts})"
