"""Per-request structured event log: join any outcome to its trace.

Metrics aggregate and spans time things, but neither answers the
on-call question "*which* request was shed, at what pressure, under
which index generation, and where is its trace?"  The event log does:
one structured record per handled request —

``seq, id, op, index, index_generation, status, mode, error_code,
predicted_cost, observed_wall, backlog, pressure, retry_after,
trace_id, span_id``

— where ``predicted_cost`` is the admission controller's virtual-cost
estimate (fitted model or per-point fallback, see
``docs/service.md``), ``observed_wall`` is the measured wall latency,
and ``trace_id``/``span_id`` are the exemplar linking the record to the
request's span in the trace tree.  A shed or deadline miss in a traffic
report can therefore be joined to its exact trace, and the
predicted-vs-observed columns are the raw material the cost-model drift
analysis reads back.

The log is **bounded** two ways: the in-memory ring keeps the last
``maxlen`` events (``dropped`` counts evictions, surfaced as a gauge),
and the optional JSONL file is size-capped — when appended lines exceed
``maxlen``, the file is compacted to the ring's contents, so a
long-lived service cannot grow an unbounded audit file.  Events are
plain JSON-ready dicts; the file is newline-delimited JSON, one event
per line, append-ordered.
"""

from __future__ import annotations

import json
from collections import deque

#: Default in-memory ring capacity (and JSONL file line cap).
DEFAULT_EVENT_MAXLEN = 4096


class EventLog:
    """Bounded per-request event ring with optional JSONL write-through."""

    def __init__(self, path: str | None = None, maxlen: int = DEFAULT_EVENT_MAXLEN):
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1; got {maxlen}")
        self.path = path
        self.maxlen = int(maxlen)
        self.events: "deque[dict]" = deque(maxlen=self.maxlen)
        self.appended_total = 0
        self._file_lines = 0
        if path is not None:
            # Re-attaching to an existing file (e.g. after a simulated
            # crash): keep appending, with the line cap still honoured.
            try:
                with open(path, encoding="utf-8") as fh:
                    self._file_lines = sum(1 for line in fh if line.strip())
            except FileNotFoundError:
                pass

    def append(self, event: dict) -> dict:
        """Record one event (JSON-ready dict); returns it."""
        self.events.append(event)
        self.appended_total += 1
        if self.path is not None:
            if self._file_lines >= self.maxlen:
                self._compact()
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(event, separators=(",", ":"), sort_keys=True) + "\n")
            self._file_lines += 1
        return event

    def _compact(self) -> None:
        """Rewrite the JSONL file to the ring's current contents."""
        with open(self.path, "w", encoding="utf-8") as fh:
            for event in self.events:
                fh.write(json.dumps(event, separators=(",", ":"), sort_keys=True) + "\n")
        self._file_lines = len(self.events)

    @property
    def dropped(self) -> int:
        """Events evicted from the bounded ring."""
        return self.appended_total - len(self.events)

    def snapshot(self) -> list[dict]:
        """The ring as a list, oldest first."""
        return [dict(e) for e in self.events]

    def stats(self) -> dict:
        return {
            "appended": self.appended_total,
            "retained": len(self.events),
            "dropped": self.dropped,
            "path": self.path,
        }

    def __len__(self) -> int:
        return len(self.events)


def load_events(path: str) -> list[dict]:
    """Read a JSONL event file back (skipping blank lines)."""
    out = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
