"""Resilient clustering service — the ROADMAP's serving tier.

A long-lived request loop (stdin-JSON via :meth:`ClusteringService.serve_lines`,
HTTP via :mod:`repro.service.http`) serving cluster / count / knn queries
and insert / delete mutations against named, persistent indexes.  The
package is organised around its failure modes:

``protocol``
    Request schema, size caps and typed parse errors (``malformed`` /
    ``oversized`` are *expected* inputs, not crashes).
``admission``
    Virtual-time admission control: bounded in-flight backlog and queue
    depth with explicit ``Retry-After`` backpressure.
``breaker``
    Per-index circuit breaker over kernel faults, recovering via
    half-open probes.
``degrade``
    The declared degradation ladder — ``full → single → cached →
    count_only → shed`` — selected by backlog pressure.
``journal``
    Append-only mutation journal; a restarted service replays it to the
    exact pre-crash index fingerprints.
``state``
    :class:`ServiceIndex` — mutable, crash-safe index state over
    ``refit_bvh`` + periodic rebuild, with tombstone-masked traversals.
``service``
    :class:`ClusteringService` — the loop tying it all together, feeding
    ``repro.obs`` spans and Prometheus-style metrics per request.
``traffic``
    Seeded synthetic traffic generator + latency-percentile report.

See ``docs/service.md`` for the protocol and the robustness contracts.
"""

from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.breaker import CircuitBreaker
from repro.service.degrade import LADDER, DegradationLadder
from repro.service.journal import Journal, JournalCorruptError
from repro.service.protocol import (
    MalformedRequestError,
    OversizedRequestError,
    ProtocolError,
    Request,
    parse_request,
)
from repro.service.service import ClusteringService, ServiceConfig
from repro.service.state import ServiceIndex
from repro.service.traffic import run_traffic, save_traffic_report

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "CircuitBreaker",
    "ClusteringService",
    "DegradationLadder",
    "Journal",
    "JournalCorruptError",
    "LADDER",
    "MalformedRequestError",
    "OversizedRequestError",
    "ProtocolError",
    "Request",
    "ServiceConfig",
    "ServiceIndex",
    "parse_request",
    "run_traffic",
    "save_traffic_report",
]
