"""Mutable, crash-safe index state: tombstones, refit, periodic rebuild.

A served index must accept inserts and deletes *between* queries without
rebuilding its BVH from scratch each time.  :class:`ServiceIndex` wraps
the repository's immutable :class:`~repro.core.index.DBSCANIndex` with a
slot model:

- **slots** are tree-leaf positions.  ``slot_points``/``slot_ids`` hold
  one point (and its immutable, monotonically assigned id) per slot;
  ``alive`` masks deletions as **tombstones** — the tree keeps the dead
  leaf, traversals exclude it with 0-weight counts
  (:func:`~repro.bvh.traversal.count_within` ``leaf_weights``) and an
  alive-mask filter on the pair stream.
- an **insert** reuses a tombstoned slot when one exists: the slot's
  coordinates are overwritten and the tree is repaired in one batched
  bottom-up :func:`~repro.bvh.refit.refit_bvh` at the next query (which
  also drops the packed traversal layout via ``invalidate_packed`` — the
  staleness hazard the churn tests pin down).  With no free slot the row
  is appended, which forces a full rebuild at the next query.
- a **periodic rebuild** (every ``rebuild_every`` mutations, or whenever
  appended rows / a knn query require it) compacts tombstones into a
  fresh tree, restoring traversal efficiency.

**Fingerprints are layout-independent**: :meth:`fingerprint` hashes the
live ``(id, point)`` pairs in id order, so it is a pure function of the
mutation history — two services that applied the same journal agree
bit-for-bit even if their rebuilds happened at different times.  The
fingerprint changes exactly when live geometry changes (insert/delete),
never on queries, refits or rebuilds.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.bvh.refit import refit_bvh
from repro.bvh.knn import knn_radii
from repro.bvh.traversal import count_within, for_each_leaf_hit
from repro.core.framework import PairResolver
from repro.core.index import DBSCANIndex
from repro.core.labels import finalize_clusters
from repro.core.validation import validate_params, validate_points
from repro.device.device import Device, default_device
from repro.unionfind.ecl import EclUnionFind

#: Default mutation count between full rebuilds.
DEFAULT_REBUILD_EVERY = 64


class ServiceIndex:
    """One named, mutable index (see module docstring for the model)."""

    def __init__(
        self,
        name: str,
        X: np.ndarray,
        ids: np.ndarray | None = None,
        rebuild_every: int = DEFAULT_REBUILD_EVERY,
        traversal: str | None = None,
    ):
        if rebuild_every < 1:
            raise ValueError(f"rebuild_every must be >= 1; got {rebuild_every}")
        X = validate_points(X)
        self.name = name
        self.dim = X.shape[1]
        self.rebuild_every = int(rebuild_every)
        self.traversal = traversal
        self.slot_points = np.ascontiguousarray(X, dtype=np.float64).copy()
        if ids is None:
            self.slot_ids = np.arange(X.shape[0], dtype=np.int64)
        else:
            self.slot_ids = np.asarray(ids, dtype=np.int64).copy()
            if self.slot_ids.shape != (X.shape[0],):
                raise ValueError("ids must have one entry per point")
        self.next_id = int(self.slot_ids.max()) + 1 if self.slot_ids.size else 0
        self.alive = np.ones(X.shape[0], dtype=bool)
        self._free: list[int] = []  # tombstoned slots, reusable by inserts
        self.index: DBSCANIndex | None = DBSCANIndex(self.slot_points.copy(), traversal=traversal)
        self.tree = None
        self._boxes_dirty = False
        self.mutations_since_rebuild = 0
        #: Bumped on every mutation — the result cache's staleness key.
        self.generation = 0
        self.rebuilds = 0
        self.refits = 0
        self._fp: str | None = None

    # -- introspection ---------------------------------------------------------

    @property
    def n_slots(self) -> int:
        return self.slot_points.shape[0]

    @property
    def n_live(self) -> int:
        return int(self.alive.sum())

    @property
    def n_tombstones(self) -> int:
        return self.n_slots - self.n_live

    def live_slots(self) -> np.ndarray:
        return np.flatnonzero(self.alive)

    def stats(self) -> dict:
        return {
            "n_live": self.n_live,
            "n_tombstones": self.n_tombstones,
            "n_slots": self.n_slots,
            "dim": self.dim,
            "generation": self.generation,
            "rebuilds": self.rebuilds,
            "refits": self.refits,
            "mutations_since_rebuild": self.mutations_since_rebuild,
            "fingerprint": self.fingerprint(),
        }

    def fingerprint(self) -> str:
        """Content hash of the live ``(id, point)`` pairs in id order —
        layout-independent (module docstring)."""
        if self._fp is None:
            live = self.live_slots()
            ids = self.slot_ids[live]
            order = np.argsort(ids, kind="stable")
            digest = hashlib.sha1()
            digest.update(np.int64(ids.size).tobytes())
            digest.update(np.ascontiguousarray(ids[order]).tobytes())
            digest.update(
                np.ascontiguousarray(self.slot_points[live][order], dtype=np.float64).tobytes()
            )
            self._fp = digest.hexdigest()
        return self._fp

    # -- mutation --------------------------------------------------------------

    def _mutated(self) -> None:
        self.generation += 1
        self.mutations_since_rebuild += 1
        self._fp = None

    def insert(self, rows: np.ndarray, ids: list[int] | None = None) -> list[int]:
        """Insert rows; returns their assigned ids.

        ``ids`` is only passed by journal replay (re-applying the exact
        ids the original run assigned).  Tombstoned slots are reused
        first (repaired by one batched refit at the next query); leftover
        rows are appended and force a rebuild at the next query.
        """
        rows = np.ascontiguousarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.dim:
            raise ValueError(f"insert rows must be (k, {self.dim}); got {rows.shape}")
        if ids is None:
            new_ids = list(range(self.next_id, self.next_id + rows.shape[0]))
        else:
            if len(ids) != rows.shape[0]:
                raise ValueError("ids must match the number of rows")
            new_ids = [int(i) for i in ids]
        self.next_id = max(self.next_id, max(new_ids) + 1)

        n_reuse = min(len(self._free), rows.shape[0])
        for j in range(n_reuse):
            slot = self._free.pop()
            self.slot_points[slot] = rows[j]
            self.slot_ids[slot] = new_ids[j]
            self.alive[slot] = True
            self._boxes_dirty = True
        if n_reuse < rows.shape[0]:
            extra = rows[n_reuse:]
            self.slot_points = np.concatenate([self.slot_points, extra])
            self.slot_ids = np.concatenate(
                [self.slot_ids, np.asarray(new_ids[n_reuse:], dtype=np.int64)]
            )
            self.alive = np.concatenate([self.alive, np.ones(extra.shape[0], dtype=bool)])
        self._mutated()
        return new_ids

    def delete(self, ids: list[int]) -> int:
        """Tombstone the given ids; all-or-nothing (unknown id raises
        ``KeyError`` before anything is applied).  Returns the count."""
        wanted = np.asarray(sorted(set(int(i) for i in ids)), dtype=np.int64)
        live = self.live_slots()
        pos = {int(pid): int(slot) for slot, pid in zip(live, self.slot_ids[live])}
        missing = [int(i) for i in wanted if int(i) not in pos]
        if missing:
            raise KeyError(f"unknown point ids: {missing[:8]}")
        for pid in wanted:
            slot = pos[int(pid)]
            self.alive[slot] = False
            self._free.append(slot)
        self._mutated()
        return int(wanted.size)

    # -- tree maintenance ------------------------------------------------------

    def _rebuild(self) -> None:
        """Compact live points (in id order) into fresh slot arrays and a
        fresh index; the tree is rebuilt lazily by :meth:`ensure_ready`."""
        live = self.live_slots()
        ids = self.slot_ids[live]
        order = np.argsort(ids, kind="stable")
        self.slot_points = np.ascontiguousarray(self.slot_points[live][order])
        self.slot_ids = np.ascontiguousarray(ids[order])
        self.alive = np.ones(self.slot_points.shape[0], dtype=bool)
        self._free = []
        self.index = (
            DBSCANIndex(self.slot_points.copy(), traversal=self.traversal)
            if self.slot_points.shape[0]
            else None
        )
        self.tree = None
        self._boxes_dirty = False
        self.mutations_since_rebuild = 0
        self.rebuilds += 1

    def ensure_ready(self, device: Device, for_knn: bool = False) -> None:
        """Bring the tree in sync with the slot state: rebuild when
        appended rows / the mutation budget / a knn query demand it,
        else repair moved leaf boxes with one batched refit."""
        if self.n_live == 0:
            self.tree = None
            return
        covered = self.index is not None and self.index.n == self.n_slots
        if (
            not covered
            or self.mutations_since_rebuild >= self.rebuild_every
            or (for_knn and self.n_tombstones)
        ):
            self._rebuild()
        if self.tree is None:
            self.tree, _ = self.index.points_tree(device)
        if self._boxes_dirty:
            # Batched repair: rewrite every leaf box from the slot
            # coordinates (idempotent — untouched slots rewrite their own
            # box), then refit internal boxes bottom-up.  refit_bvh drops
            # the packed traversal layout, so the next traversal cannot
            # read stale child boxes.
            n_int = self.tree.n_internal
            leaves = self.slot_points[self.tree.order]
            self.tree.node_lo[n_int:] = leaves
            self.tree.node_hi[n_int:] = leaves
            with device.kernel("service_refit", threads=self.n_slots):
                refit_bvh(self.tree)
            self._boxes_dirty = False
            self.refits += 1

    # -- queries ---------------------------------------------------------------

    def _masked_counts(
        self,
        queries: np.ndarray,
        eps: float,
        device: Device,
        stop_at=None,
        traversal: str = "single",
        watchdog=None,
    ) -> np.ndarray:
        """Neighbour counts over *live* points only (tombstones weigh 0)."""
        if self.n_tombstones:
            weights = self.alive.astype(np.float64)[self.tree.order]
            return count_within(
                self.tree, queries, eps, stop_at=stop_at, device=device,
                leaf_weights=weights, traversal=traversal, watchdog=watchdog,
            )
        return count_within(
            self.tree, queries, eps, stop_at=stop_at, device=device,
            traversal=traversal, watchdog=watchdog,
        )

    def count(
        self,
        eps: float,
        min_samples: int,
        queries: np.ndarray | None = None,
        device: Device | None = None,
        traversal: str = "single",
        watchdog=None,
    ) -> dict:
        """Exact neighbour counts within ``eps`` for ``queries`` (default:
        the live points themselves), plus the core count at
        ``min_samples``.  Always exact — counts are the ladder's floor,
        so they are never themselves degraded."""
        eps, minpts = validate_params(eps, min_samples)
        device = default_device(device)
        self.ensure_ready(device)
        if self.n_live == 0:
            return {"counts": [], "n_core": 0, "n_points": 0}
        if queries is None:
            queries = self.slot_points[self.live_slots()]
        counts = self._masked_counts(
            queries, eps, device, stop_at=None, traversal=traversal, watchdog=watchdog
        )
        counts = np.rint(np.asarray(counts, dtype=np.float64)).astype(np.int64)
        return {
            "counts": counts.tolist(),
            "n_core": int((counts >= minpts).sum()),
            "n_points": int(queries.shape[0]),
        }

    def cluster(
        self,
        eps: float,
        min_samples: int,
        device: Device | None = None,
        traversal: str = "single",
        watchdog=None,
        count_only: bool = False,
    ) -> dict:
        """DBSCAN over the live points, tombstone-masked.

        Labels are returned in **id order** (``ids[i]`` labels point
        ``ids[i]``) so responses are comparable across rebuilds; cluster
        numbering follows the internal slot layout and is only stable up
        to permutation (compare with
        :func:`repro.metrics.equivalence.partitions_equal`).

        ``count_only=True`` is the ladder's degraded form: run just the
        early-exited core-count phase and skip the union-find main phase.
        """
        eps, minpts = validate_params(eps, min_samples)
        device = default_device(device)
        self.ensure_ready(device)
        live = self.live_slots()
        n_live = live.size
        if n_live == 0:
            out = {"n_points": 0, "n_core": 0}
            if not count_only:
                out.update({"ids": [], "labels": [], "is_core": [], "n_clusters": 0})
            return out
        queries = self.slot_points[live]
        counts = self._masked_counts(
            queries, eps, device, stop_at=minpts, traversal=traversal, watchdog=watchdog
        )
        is_core = np.asarray(counts >= minpts)
        if count_only:
            return {"n_points": int(n_live), "n_core": int(is_core.sum())}

        uf = EclUnionFind(n_live, device=device)
        resolver = PairResolver(uf, is_core, device=device)
        slot_to_live = np.full(self.n_slots, -1, dtype=np.int64)
        slot_to_live[live] = np.arange(n_live, dtype=np.int64)
        mask_positions = self.tree.position[live]
        order = self.tree.order
        alive = self.alive
        any_dead = self.n_tombstones > 0

        def on_hits(q_ids: np.ndarray, leaf_pos: np.ndarray) -> None:
            slots = order[leaf_pos]
            if any_dead:
                keep = alive[slots]
                resolver.add(q_ids[keep], slot_to_live[slots[keep]])
            else:
                resolver.add(q_ids, slot_to_live[slots])

        for_each_leaf_hit(
            self.tree,
            queries,
            eps,
            on_hits,
            mask_positions=mask_positions,
            device=device,
            kernel_name="service_cluster",
            traversal=traversal,
            watchdog=watchdog,
        )
        resolver.finalize()
        labels, core_mask, n_clusters = finalize_clusters(uf.parents, is_core, device.counters)
        ids = self.slot_ids[live]
        id_order = np.argsort(ids, kind="stable")
        return {
            "ids": ids[id_order].tolist(),
            "labels": labels[id_order].tolist(),
            "is_core": core_mask[id_order].tolist(),
            "n_clusters": int(n_clusters),
            "n_points": int(n_live),
            "n_core": int(is_core.sum()),
        }

    def knn(
        self,
        k: int,
        queries: np.ndarray | None = None,
        device: Device | None = None,
        traversal: str = "single",
        watchdog=None,
    ) -> dict:
        """Distance to each query's ``k``-th nearest live point.

        knn has no tombstone-masked form (the expanding-radius engine
        counts leaves, not weights), so a dirty index compacts first —
        ``ensure_ready(for_knn=True)`` guarantees zero tombstones.
        """
        device = default_device(device)
        self.ensure_ready(device, for_knn=True)
        if self.n_live == 0 or k > self.n_live:
            raise ValueError(f"k={k} exceeds the {self.n_live} live points")
        if queries is None:
            queries = self.slot_points
        radii = knn_radii(
            self.tree,
            queries,
            int(k),
            device=device,
            points=self.slot_points,
            traversal=traversal,
            watchdog=watchdog,
        )
        return {"radii": [round(float(r), 12) for r in radii], "n_points": int(queries.shape[0])}
