"""Per-index circuit breaker over kernel faults.

Repeated :class:`~repro.device.device.KernelFaultError` /
:class:`~repro.device.memory.DeviceMemoryError` failures on one index are
evidence of something persistent (poisoned state, a hot cell, a sick
device) — hammering it with more traffic converts one bad index into a
whole-service outage.  The breaker implements the classic three states:

- **closed**: requests flow; ``failure_threshold`` *consecutive*
  terminal kernel faults trip it open (a success resets the streak).
- **open**: requests are refused instantly with ``Retry-After`` set to
  the cooldown remainder — no device work at all.
- **half_open**: after ``cooldown`` seconds one probe request is allowed
  through; success closes the breaker, failure re-opens it for a fresh
  cooldown.

Time comes from the injected clock (virtual in tests), so trip/recover
sequences replay deterministically.
"""

from __future__ import annotations

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    def __init__(self, clock, failure_threshold: int = 3, cooldown: float = 5.0):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1; got {failure_threshold}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be positive; got {cooldown}")
        self.clock = clock
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self._opened_at = 0.0
        self._probing = False

    def allow(self) -> tuple[bool, float]:
        """Whether a request may proceed; ``(False, retry_after)`` when
        the breaker is open.  An allowed request in ``half_open`` is the
        probe — its outcome decides the next state."""
        if self.state == OPEN:
            waited = self.clock.now() - self._opened_at
            if waited < self.cooldown:
                return False, self.cooldown - waited
            self.state = HALF_OPEN
            self._probing = False
        if self.state == HALF_OPEN:
            if self._probing:
                # One probe at a time; others wait a full cooldown.
                return False, self.cooldown
            self._probing = True
        return True, 0.0

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._probing = False
        self.state = CLOSED

    def record_failure(self) -> None:
        """Count one *terminal* kernel-fault failure (after retries)."""
        self.consecutive_failures += 1
        self._probing = False
        if self.state == HALF_OPEN or self.consecutive_failures >= self.failure_threshold:
            self.state = OPEN
            self._opened_at = self.clock.now()
            self.trips += 1
            self.consecutive_failures = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker(state={self.state}, trips={self.trips})"
