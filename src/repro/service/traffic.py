"""Synthetic traffic: seeded load, service-level faults, latency report.

:func:`run_traffic` drives a :class:`~repro.service.service.ClusteringService`
with a deterministic request stream — a seeded op mix over a handful of
named indexes, exponential-ish virtual inter-arrival gaps — and applies
the *service-level* kinds of a :class:`~repro.faults.FaultPlan` to each
request **on the wire**, before the service sees it:

``malformed``
    The JSON text is truncated mid-payload (an interrupted client).
``oversized``
    The body is padded past ``max_request_bytes``.
``deadline_storm``
    The request ships an absurd deadline (``deadline_checks=1``) — it
    will be admitted and then killed by its own watchdog.
``invalidate``
    A small insert mutation is injected immediately before the request,
    invalidating fingerprints/caches under the reader's feet.
``service_crash``
    The service object is dropped on the floor (no shutdown, journal
    untouched) and a fresh one is constructed from the same journal
    path — the crash-recovery path, exercised mid-stream.  At most one
    per plan, and only meaningful with a real ``journal_path``.

Device-level kinds (kernel faults, OOM) ride along through the plan the
service itself holds.  Everything is keyed on ``(seed, request seq)``,
so a rerun replays byte-identically: the report's percentiles move, the
status counts do not.

The report (:func:`save_traffic_report`) carries p50/p95/p99 wall
latency (estimated from the service's own fixed-bucket histogram via
:meth:`~repro.obs.metrics.Histogram.quantile` — the same instrument a
Prometheus scrape would see), counts by status / op / shed-reason,
restart count, the SLO error-budget statuses, and the metrics-vs-ledger
equality proof.
"""

from __future__ import annotations

import json

import numpy as np

from repro.faults import FaultPlan
from repro.obs import Tracer
from repro.obs.slo import evaluate_slos
from repro.service.events import EventLog
from repro.service.service import ClusteringService, ServiceConfig

#: Default op mix (op, weight) for generated request streams.
DEFAULT_MIX = (
    ("cluster", 0.45),
    ("count", 0.2),
    ("knn", 0.15),
    ("insert", 0.1),
    ("delete", 0.05),
    ("stats", 0.05),
)


def generate_points(rng: np.random.Generator, n: int, dim: int = 2) -> list:
    """A small blob of points (as JSON-ready lists)."""
    centers = rng.uniform(0.2, 0.8, size=(3, dim))
    which = rng.integers(0, len(centers), size=n)
    pts = centers[which] + rng.normal(0.0, 0.04, size=(n, dim))
    return np.round(pts, 6).tolist()


def run_traffic(
    n_requests: int = 200,
    seed: int = 0,
    plan: FaultPlan | None = None,
    journal_path: str | None = None,
    config: ServiceConfig | None = None,
    n_indexes: int = 2,
    index_points: int = 400,
    mix=DEFAULT_MIX,
    mean_gap_s: float = 0.012,
    service: ClusteringService | None = None,
    tracer=None,
    event_log_path: str | None = None,
) -> dict:
    """Drive a service with ``n_requests`` seeded requests; return a report.

    A fresh service is built unless one is passed in; when ``plan``
    schedules a ``service_crash``, the service is torn down and rebuilt
    from ``journal_path`` mid-run (the pre/post fingerprints of every
    index are recorded in the report for the bit-equality assertion).

    A real :class:`~repro.obs.Tracer` is installed by default so every
    structured event (and therefore every shed / deadline miss in the
    report) carries a ``trace_id``/``span_id`` exemplar; pass an
    explicit tracer to share one across runs.  ``event_log_path``
    write-throughs the bounded event ring to JSONL (survives the
    simulated crash — the restarted service keeps appending).
    """
    rng = np.random.default_rng([int(seed), 0x7AF1C])
    cfg = config or ServiceConfig()
    if tracer is None:
        tracer = Tracer()
    if service is None:
        event_log = EventLog(path=event_log_path, maxlen=cfg.event_log_maxlen)
        service = ClusteringService(
            journal_path=journal_path, config=cfg, fault_plan=plan, tracer=tracer,
            event_log=event_log,
        )
    else:
        event_log = service.events
    ops, weights = zip(*mix)
    weights = np.asarray(weights, dtype=np.float64)
    weights = weights / weights.sum()
    names = [f"idx{i}" for i in range(n_indexes)]

    records: list[dict] = []
    restarts: list[dict] = []
    faults_applied: dict[str, int] = {}
    next_knn_k = 5

    def send(payload, label: str) -> dict:
        response = service.handle(payload)
        records.append(
            {
                "label": label,
                "status": response["status"],
                "mode": response.get("mode"),
                "error_code": response.get("error", {}).get("code"),
            }
        )
        return response

    # Seed the indexes (these count as requests too — a service has no
    # out-of-band setup path).
    for name in names:
        send(
            {
                "op": "create_index", "id": f"setup-{name}", "index": name,
                "points": generate_points(rng, index_points),
            },
            "setup",
        )

    for i in range(n_requests):
        # Virtual inter-arrival gap: drains the admission backlog at a
        # seeded rate, so the run actually sweeps the ladder's pressure
        # range instead of pinning at either end.
        sleep = getattr(service.clock, "sleep", None)
        if sleep is not None and mean_gap_s > 0:
            sleep(float(rng.exponential(mean_gap_s)))
        op = str(rng.choice(ops, p=weights))
        name = names[int(rng.integers(0, len(names)))]
        req: dict = {"op": op, "id": f"t{i}", "index": name}
        if op == "cluster":
            req.update(eps=0.08, min_samples=5)
            if rng.random() < 0.3:
                req["traversal"] = "dual" if rng.random() < 0.5 else "auto"
        elif op == "count":
            req.update(eps=0.08, min_samples=5)
        elif op == "knn":
            req["k"] = next_knn_k
        elif op == "insert":
            req["points"] = generate_points(rng, int(rng.integers(1, 6)))
        elif op == "delete":
            stats = service.indexes.get(name)
            if stats is None or stats.n_live < 8:
                req = {"op": "stats", "id": f"t{i}"}
                op = "stats"
            else:
                live = stats.slot_ids[stats.alive]
                take = rng.choice(live, size=min(2, live.size), replace=False)
                req["ids"] = [int(x) for x in take]

        kinds = plan.request_faults(i) if plan is not None else []
        for kind in kinds:
            faults_applied[kind] = faults_applied.get(kind, 0) + 1

        if "invalidate" in kinds:
            send(
                {
                    "op": "insert", "id": f"t{i}-inval", "index": name,
                    "points": generate_points(rng, 2),
                },
                "fault:invalidate",
            )
        if "deadline_storm" in kinds:
            req["deadline_checks"] = 1

        payload = json.dumps(req)
        if "oversized" in kinds:
            pad = "x" * (service.config.max_request_bytes + 1)
            payload = json.dumps(dict(req, pad=pad))
        elif "malformed" in kinds:
            payload = payload[: max(1, len(payload) * 2 // 3)]

        send(payload, "traffic")

        if "service_crash" in kinds and journal_path is not None:
            before = {
                n: si.fingerprint() for n, si in sorted(service.indexes.items())
            }
            # Crash: no shutdown, no journal close — just a new process.
            # The event ring dies with it; the JSONL file (if any) keeps
            # the pre-crash records and the new service appends after.
            service = ClusteringService(
                journal_path=journal_path, config=cfg, fault_plan=plan, tracer=tracer,
                event_log=EventLog(path=event_log_path, maxlen=cfg.event_log_maxlen),
            )
            after = {
                n: si.fingerprint() for n, si in sorted(service.indexes.items())
            }
            restarts.append(
                {
                    "at_request": i,
                    "fingerprints_before": before,
                    "fingerprints_after": after,
                    "bit_equal": before == after,
                    "replayed_entries": service.replayed_entries,
                }
            )

    report = build_report(service, records, restarts, faults_applied, seed)
    report["service"] = service  # stripped by save_traffic_report
    return report


def build_report(service, records, restarts, faults_applied, seed) -> dict:
    """Aggregate a finished run into the latency/status report."""
    lat_ms = [row["wall_seconds"] * 1e3 for row in service.ledger]
    # Percentiles come from the service's own latency histogram — the
    # same fixed-bucket estimate a dashboard's histogram_quantile() would
    # show — not a privileged exact-sample computation.
    hist = service.metrics.get("repro_service_request_seconds")
    service._refresh_gauges()
    by_status: dict[str, int] = {}
    by_op: dict[str, dict] = {}
    shed_reasons: dict[str, int] = {}
    degraded_modes: dict[str, int] = {}
    for row in service.ledger:
        by_status[row["status"]] = by_status.get(row["status"], 0) + 1
        op_bucket = by_op.setdefault(row["op"], {})
        op_bucket[row["status"]] = op_bucket.get(row["status"], 0) + 1
        if row["status"] == "shed":
            reason = row.get("mode") or "unknown"
            shed_reasons[reason] = shed_reasons.get(reason, 0) + 1
        if row["status"] == "degraded":
            mode = row.get("mode") or "unknown"
            degraded_modes[mode] = degraded_modes.get(mode, 0) + 1
    return {
        "seed": int(seed),
        # `requests` is the final service instance's ledger (a crash
        # resets it, like a real process restart); `requests_sent`
        # counts every request the generator put on the wire.
        "requests": len(service.ledger),
        "requests_sent": len(records),
        "latency_ms": {
            "p50": hist.quantile(0.50) * 1e3,
            "p95": hist.quantile(0.95) * 1e3,
            "p99": hist.quantile(0.99) * 1e3,
            "max": max(lat_ms) if lat_ms else 0.0,
        },
        "slo": evaluate_slos(service.metrics, service.config.slos),
        "events": service.events.stats(),
        "by_status": by_status,
        "by_op": by_op,
        "shed_reasons": shed_reasons,
        "degraded_modes": degraded_modes,
        "faults_applied": faults_applied,
        "restarts": restarts,
        "records": records,
        "metrics_ledger": service.verify_metrics_ledger(),
        "stats": service._stats(),
        "prometheus": service.metrics.to_prometheus(),
    }


def save_traffic_report(report: dict, path: str) -> None:
    """Write the report as JSON (dropping the live service handle)."""
    clean = {k: v for k, v in report.items() if k != "service"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(clean, fh, indent=2, sort_keys=True)
        fh.write("\n")
