"""Optional HTTP front-end over the stdin-loop service (stdlib only).

Endpoints:

- ``POST /`` — one request body (the same JSON the stdin loop takes);
  the service response comes back as JSON.  HTTP status mirrors the
  service status: 200 for ``ok``/``degraded``, 400 for ``rejected``,
  404/409 mapped from the error code, 429 with a ``Retry-After`` header
  for ``shed``, 500 otherwise.
- ``GET /metrics`` — Prometheus text exposition (SLO budget and trace-
  health gauges refreshed at scrape time).
- ``GET /healthz`` — structured readiness: the service's ``health()``
  JSON (per-index breaker state, admission pressure, SLO error budgets,
  event-log stats); 200 when ``ok``, 503 when a breaker is open or an
  objective's budget is spent.

The service object is single-threaded by design (one simulated device);
a lock serialises handler access so ``ThreadingHTTPServer``'s per-
connection threads cannot interleave requests mid-traversal.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.service import ClusteringService

_STATUS_HTTP = {"ok": 200, "degraded": 200, "rejected": 400, "shed": 429}
_ERROR_HTTP = {"not_found": 404, "conflict": 409, "deadline_exceeded": 504}


def make_handler(service: ClusteringService, lock: threading.Lock):
    class Handler(BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):  # quiet by default
            pass

        def _send(self, code: int, body: str, content_type: str, retry_after=None):
            data = body.encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            if retry_after is not None:
                self.send_header("Retry-After", f"{retry_after:.3f}")
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self):
            if self.path == "/metrics":
                with lock:
                    service._refresh_gauges()
                    text = service.metrics.to_prometheus()
                self._send(200, text, "text/plain; version=0.0.4")
            elif self.path == "/healthz":
                with lock:
                    health = service.health()
                self._send(
                    200 if health["ok"] else 503,
                    json.dumps(health, separators=(",", ":")),
                    "application/json",
                )
            else:
                self._send(404, '{"error":"not found"}', "application/json")

        def do_POST(self):
            if self.path != "/":
                self._send(404, '{"error":"not found"}', "application/json")
                return
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length)
            with lock:
                response = service.handle(body)
            status = response.get("status", "error")
            code = _STATUS_HTTP.get(status)
            if code is None:
                code = _ERROR_HTTP.get(
                    response.get("error", {}).get("code", ""), 500
                )
            self._send(
                code,
                json.dumps(response, separators=(",", ":")),
                "application/json",
                retry_after=response.get("retry_after"),
            )

    return Handler


def serve_http(service: ClusteringService, host: str = "127.0.0.1", port: int = 8088):
    """Run the HTTP front-end until interrupted; returns the bound server.

    Binds, then blocks in ``serve_forever`` — callers wanting a
    background server should use :func:`start_http` instead.
    """
    server = start_http(service, host, port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.shutdown()
        server.server_close()
    return server


def start_http(service: ClusteringService, host: str = "127.0.0.1", port: int = 0):
    """Bind a :class:`ThreadingHTTPServer` (``port=0`` = ephemeral) and
    return it *without* blocking; callers drive ``serve_forever`` on a
    thread and ``shutdown()`` when done."""
    lock = threading.Lock()
    handler = make_handler(service, lock)
    server = ThreadingHTTPServer((host, port), handler)
    server.service = service
    return server
