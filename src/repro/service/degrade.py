"""The degradation ladder: declared, ordered, pressure-driven.

Under load the service does not fail — it descends an explicit ladder,
each rung trading answer quality (or freshness) for work, and every
response *names* the rung it was served from:

``full``
    The requested traversal engine (``dual`` when asked): exact answer.
``single``
    Force the single-query engine — exact and bit-identical labels (the
    engines' equivalence guarantee), just without dual's group-pruning
    speculation; responses stay ``status="ok"`` with ``mode="single"``.
``cached``
    Serve the last exact result for identical ``(generation, op,
    params)`` from the result cache — stale-bounded by the index
    generation, so never *wrong*, only possibly cheaper than recompute.
    A cache miss falls through to ``count_only``.
``count_only``
    Skip the union-find main phase entirely: answer with core counts
    only (an early-exited preprocessing pass).  Explicitly degraded —
    ``status="degraded"``, ``mode="count_only"``.
``shed``
    Refuse with ``Retry-After``; no device work.

The rung is selected from the admission controller's backlog pressure by
fixed thresholds, so a seeded traffic replay descends the ladder at the
same requests every run.
"""

from __future__ import annotations

#: The ladder, best to worst.
LADDER = ("full", "single", "cached", "count_only", "shed")


class DegradationLadder:
    """Map backlog pressure to a ladder rung.

    ``thresholds`` are the pressure cut-points for rungs 1..4: below
    ``thresholds[0]`` requests run ``full``; from ``thresholds[-1]`` up
    they are shed.  (The admission controller typically sheds by backlog
    bound first — the ladder's ``shed`` rung is the belt to that brace.)
    """

    def __init__(self, thresholds: tuple = (0.35, 0.6, 0.8, 0.95)):
        if len(thresholds) != len(LADDER) - 1:
            raise ValueError(f"need {len(LADDER) - 1} thresholds; got {len(thresholds)}")
        if list(thresholds) != sorted(thresholds):
            raise ValueError(f"thresholds must be non-decreasing; got {thresholds}")
        self.thresholds = tuple(float(t) for t in thresholds)

    def rung(self, pressure: float) -> str:
        for cut, rung in zip(self.thresholds, LADDER):
            if pressure < cut:
                return rung
        return LADDER[-1]
