"""Request protocol: one JSON object per request, typed parse errors.

A robust service treats garbage input as a *routine* input class, not an
exception path: :func:`parse_request` converts anything a client can send
— truncated JSON, wrong types, absurd sizes — into either a validated
:class:`Request` or a typed :class:`ProtocolError` whose ``code`` goes
straight into the error response.  Nothing a client sends may raise
anything else.

Wire format (stdin loop: one compact JSON object per line; HTTP: one per
POST body)::

    {"op": "cluster", "index": "main", "eps": 0.1, "min_samples": 5,
     "id": 42, "deadline_s": 0.5}

Fields
------
``op`` (required)
    One of :data:`OPS`.
``id``
    Client-chosen correlation id (string or number), echoed in the
    response; the service assigns ``"r<seq>"`` when omitted.
``index``
    Index name, required for every index-addressed op.
``points``
    ``[[x, y], ...]`` inline rows (``create_index``/``insert``; query
    points for ``count``/``knn`` — omitted means "the index's own live
    points").
``dataset``
    ``{"name": ..., "n": ..., "seed": ...}`` — generate the points from
    the named registry dataset instead of shipping them inline
    (``create_index`` only).
``eps`` / ``min_samples``
    Clustering parameters (``cluster``/``count``).
``k``
    Neighbour count (``knn``).
``ids``
    Point ids to remove (``delete``).
``deadline_s`` / ``deadline_checks``
    Per-request budget: wall seconds and/or a deterministic traversal
    step budget (whichever expires first).
``traversal``
    ``"single"``/``"dual"``/``"auto"`` engine preference; the
    degradation ladder may override it downward.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

#: Accepted operations.
OPS = (
    "ping",
    "stats",
    "metrics",
    "create_index",
    "drop_index",
    "cluster",
    "count",
    "knn",
    "insert",
    "delete",
)

#: Ops that address a named index.
INDEX_OPS = ("create_index", "drop_index", "cluster", "count", "knn", "insert", "delete")

#: Ops that mutate index state (journaled).
MUTATION_OPS = ("create_index", "drop_index", "insert", "delete")

#: Default request size cap (bytes of the encoded JSON).
DEFAULT_MAX_REQUEST_BYTES = 1 << 20

#: Default cap on inline point rows per request.
DEFAULT_MAX_POINTS = 100_000


class ProtocolError(ValueError):
    """Base class for request-level failures; ``code`` names the class in
    the error response."""

    code = "protocol"


class MalformedRequestError(ProtocolError):
    """Not valid JSON / not an object / missing or mistyped fields."""

    code = "malformed"


class OversizedRequestError(ProtocolError):
    """Request over the byte or point-count cap."""

    code = "oversized"


@dataclass
class Request:
    """A validated request (see module docstring for field semantics)."""

    op: str
    id: object = None
    index: str | None = None
    points: np.ndarray | None = None
    dataset: dict | None = None
    eps: float | None = None
    min_samples: int | None = None
    k: int | None = None
    ids: list[int] = field(default_factory=list)
    deadline_s: float | None = None
    deadline_checks: int | None = None
    traversal: str | None = None


def _require_number(obj: dict, key: str, positive: bool = True) -> float:
    value = obj.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise MalformedRequestError(f"{key!r} must be a number; got {value!r}")
    value = float(value)
    if not math.isfinite(value) or (positive and value <= 0):
        raise MalformedRequestError(f"{key!r} must be finite and positive; got {value}")
    return value


def _require_int(obj: dict, key: str, minimum: int = 1) -> int:
    value = obj.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise MalformedRequestError(f"{key!r} must be an integer; got {value!r}")
    if value < minimum:
        raise MalformedRequestError(f"{key!r} must be >= {minimum}; got {value}")
    return value


def _parse_points(rows, max_points: int) -> np.ndarray:
    if not isinstance(rows, list) or not rows:
        raise MalformedRequestError("'points' must be a non-empty list of rows")
    if len(rows) > max_points:
        raise OversizedRequestError(
            f"{len(rows)} points exceeds the per-request cap of {max_points}"
        )
    try:
        X = np.asarray(rows, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise MalformedRequestError(f"'points' rows are not numeric: {exc}") from exc
    if X.ndim != 2:
        raise MalformedRequestError(
            f"'points' must be rectangular rows of coordinates; got shape {X.shape}"
        )
    if not 1 <= X.shape[1] <= 3:
        raise MalformedRequestError(
            f"points must have 1..3 coordinates per row; got {X.shape[1]}"
        )
    if not np.isfinite(X).all():
        raise MalformedRequestError("'points' contains non-finite values")
    return X


def parse_request(
    raw,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    max_points: int = DEFAULT_MAX_POINTS,
) -> Request:
    """Validate one wire request (str/bytes JSON or an already-decoded
    dict) into a :class:`Request`, raising only :class:`ProtocolError`
    subclasses."""
    if isinstance(raw, (bytes, bytearray)):
        if len(raw) > max_request_bytes:
            raise OversizedRequestError(
                f"request is {len(raw)} bytes; cap is {max_request_bytes}"
            )
        try:
            raw = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise MalformedRequestError(f"request is not UTF-8: {exc}") from exc
    if isinstance(raw, str):
        if len(raw.encode("utf-8", errors="replace")) > max_request_bytes:
            raise OversizedRequestError(
                f"request is {len(raw)} bytes; cap is {max_request_bytes}"
            )
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise MalformedRequestError(f"request is not valid JSON: {exc}") from exc
    else:
        obj = raw
    if not isinstance(obj, dict):
        raise MalformedRequestError(
            f"request must be a JSON object; got {type(obj).__name__}"
        )

    op = obj.get("op")
    if op not in OPS:
        raise MalformedRequestError(f"'op' must be one of {OPS}; got {op!r}")
    req = Request(op=op, id=obj.get("id"))
    if req.id is not None and not isinstance(req.id, (str, int, float)):
        raise MalformedRequestError("'id' must be a string or number")

    if op in INDEX_OPS:
        name = obj.get("index")
        if not isinstance(name, str) or not name:
            raise MalformedRequestError(f"op {op!r} needs a non-empty 'index' name")
        req.index = name

    if "traversal" in obj:
        traversal = obj["traversal"]
        if traversal not in ("single", "dual", "auto"):
            raise MalformedRequestError(
                f"'traversal' must be 'single', 'dual' or 'auto'; got {traversal!r}"
            )
        req.traversal = traversal

    if "deadline_s" in obj:
        req.deadline_s = _require_number(obj, "deadline_s")
    if "deadline_checks" in obj:
        req.deadline_checks = _require_int(obj, "deadline_checks", minimum=0)

    if op == "create_index":
        if "points" in obj:
            req.points = _parse_points(obj["points"], max_points)
        elif "dataset" in obj:
            ds = obj["dataset"]
            if not isinstance(ds, dict) or not isinstance(ds.get("name"), str):
                raise MalformedRequestError(
                    "'dataset' must be {'name': ..., 'n': ..., 'seed': ...}"
                )
            req.dataset = {
                "name": ds["name"],
                "n": _require_int(ds, "n") if "n" in ds else 1000,
                "seed": _require_int(ds, "seed", minimum=0) if "seed" in ds else 0,
            }
            if req.dataset["n"] > max_points:
                raise OversizedRequestError(
                    f"dataset n={req.dataset['n']} exceeds the cap of {max_points}"
                )
        else:
            raise MalformedRequestError("create_index needs 'points' or 'dataset'")
    elif op == "insert":
        req.points = _parse_points(obj.get("points"), max_points)
    elif op == "delete":
        ids = obj.get("ids")
        if (
            not isinstance(ids, list)
            or not ids
            or not all(isinstance(i, int) and not isinstance(i, bool) and i >= 0 for i in ids)
        ):
            raise MalformedRequestError("delete needs 'ids': a non-empty list of ids >= 0")
        req.ids = list(ids)
    elif op in ("cluster", "count"):
        req.eps = _require_number(obj, "eps")
        req.min_samples = _require_int(obj, "min_samples")
        if op == "count" and "points" in obj:
            req.points = _parse_points(obj["points"], max_points)
    elif op == "knn":
        req.k = _require_int(obj, "k")
        if "points" in obj:
            req.points = _parse_points(obj["points"], max_points)

    return req


def make_response(
    req_id,
    status: str,
    result: dict | None = None,
    mode: str | None = None,
    retry_after: float | None = None,
    error_code: str | None = None,
    error_message: str | None = None,
) -> dict:
    """Assemble the uniform response envelope.

    ``status`` is one of ``ok`` (exact answer), ``degraded`` (explicitly
    weaker answer per the ladder, named by ``mode``), ``shed`` (not
    attempted; come back in ``retry_after`` seconds), ``rejected``
    (malformed/oversized — retrying unchanged cannot help) and ``error``
    (attempted but failed; ``error.code`` says why).
    """
    resp: dict = {"id": req_id, "status": status}
    if mode is not None:
        resp["mode"] = mode
    if retry_after is not None:
        resp["retry_after"] = round(float(retry_after), 6)
    if result is not None:
        resp["result"] = result
    if error_code is not None:
        resp["error"] = {"code": error_code, "message": error_message or ""}
    return resp
