"""The request loop: deadlines, admission, breakers, ladder, journal.

:class:`ClusteringService` ties the package together.  One request flows

1. **parse** — :func:`~repro.service.protocol.parse_request`; protocol
   errors answer ``rejected`` with the typed code, nothing else runs.
2. **breaker** — an open per-index circuit breaker refuses instantly
   (``shed`` + ``Retry-After``), no device work.
3. **admission** — the virtual-cost estimate is offered to the
   controller; refusal answers ``shed`` with the exact drain time.
4. **ladder** — backlog pressure picks the degradation rung
   (full/single/cached/count_only/shed) the executor honours.
5. **execute** — under the per-request :class:`~repro.faults.Deadline`
   (threaded into the traversals as ``watchdog=``) and the retry policy;
   seeded kernel faults are injected through
   :meth:`~repro.faults.FaultPlan.device_faults` exactly like the bench
   harness does, and terminal kernel faults feed the breaker.
6. **account** — one ledger row, one ``request:<op>`` span, and the
   Prometheus-style counters whose totals provably equal the ledger
   (the equality is asserted in tests and exposed via
   :meth:`ClusteringService.verify_metrics_ledger`).

Every mutation that succeeds is journaled (fingerprint included) before
its response is returned — see :mod:`repro.service.journal` for the
crash-recovery contract.  ``handle`` never raises on any input: the
response's ``status``/``error.code`` is the only failure channel.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.registry import load_dataset
from repro.device.device import Device, KernelFaultError
from repro.device.memory import DeviceMemoryError
from repro.faults import (
    Deadline,
    DeadlineExceededError,
    FaultPlan,
    RetryPolicy,
    SimClock,
    call_with_retries,
)
from repro.obs import NULL_TRACER, MetricsRegistry
from repro.obs.metrics import record_trace_health
from repro.obs.slo import DEFAULT_SLOS, evaluate_slos, record_slo_gauges
from repro.service.admission import AdmissionController
from repro.service.events import DEFAULT_EVENT_MAXLEN, EventLog
from repro.service.breaker import CircuitBreaker
from repro.service.degrade import DegradationLadder
from repro.service.journal import Journal, JournalCorruptError
from repro.service.protocol import (
    DEFAULT_MAX_POINTS,
    DEFAULT_MAX_REQUEST_BYTES,
    MUTATION_OPS,
    ProtocolError,
    Request,
    make_response,
    parse_request,
)
from repro.service.state import ServiceIndex


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide knobs (all deterministic given a clock)."""

    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES
    max_points: int = DEFAULT_MAX_POINTS
    #: Applied when a request carries no deadline of its own.
    default_deadline_s: float | None = None
    default_deadline_checks: int | None = None
    max_backlog: float = 2.0
    max_queue: int = 128
    ladder_thresholds: tuple = (0.35, 0.6, 0.8, 0.95)
    breaker_threshold: int = 3
    breaker_cooldown: float = 5.0
    rebuild_every: int = 64
    result_cache_size: int = 32
    #: Virtual seconds per point for the admission cost model; the floor
    #: keeps tiny requests from being free.
    cost_per_point: dict = field(
        default_factory=lambda: {
            "cluster": 2e-4, "count": 1e-4, "knn": 4e-4,
            "create_index": 1e-4, "insert": 2e-5, "delete": 1e-5,
        }
    )
    cost_floor: float = 1e-3
    #: Optional fitted cost model (:class:`repro.obs.fit.FittedCostModel`,
    #: loaded from a ``COSTMODEL.json``).  When set, admission prices a
    #: request from the model's fitted per-point work rates instead of the
    #: hand-set ``cost_per_point`` seconds — the constants above then only
    #: provide each op's *relative* weight against ``cluster``, and remain
    #: the full fallback when the model carries no per-point rates.
    cost_model: object | None = None
    #: Service-level objectives evaluated over the metrics registry (and
    #: the request ledger for ``last:N``-window objectives), reported by
    #: ``/healthz``, ``/metrics`` gauges and traffic reports.
    slos: tuple = DEFAULT_SLOS
    #: Execution backend for the service device: ``"serial"`` runs
    #: traversals in-process, ``"process"`` fans eligible chunk frontiers
    #: over the shared worker pool (see :mod:`repro.device.backends`) —
    #: labels and counters stay bit-identical either way.
    backend: str = "serial"
    #: Worker-process count for ``backend="process"`` (``None`` = the
    #: backend default).
    workers: int | None = None
    #: Bound on the per-request structured event ring (and the JSONL
    #: event file's line cap; see :mod:`repro.service.events`).
    event_log_maxlen: int = DEFAULT_EVENT_MAXLEN


class ClusteringService:
    """A long-lived clustering service over named mutable indexes.

    Parameters
    ----------
    journal_path:
        Mutation journal location (``None`` = in-memory only).  If the
        file already holds entries they are replayed before the first
        request — fingerprints asserted per entry.
    clock:
        ``now()``/``sleep()`` provider for admission, breakers and retry
        backoff; defaults to a fresh :class:`~repro.faults.SimClock`
        (deterministic).  Wall latency is measured separately.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` whose *device* fault
        probabilities are injected per attempt.  (Request-level service
        faults are the *traffic generator's* job — they mutate what
        arrives on the wire, which a real service cannot distinguish
        from a hostile client.)
    """

    def __init__(
        self,
        journal_path: str | None = None,
        config: ServiceConfig | None = None,
        clock=None,
        device: Device | None = None,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        event_log: EventLog | None = None,
    ):
        self.config = config or ServiceConfig()
        self.clock = clock if clock is not None else SimClock()
        self.device = device or Device(name="service")
        if str(self.config.backend) != "serial":
            from repro.device.backends import coerce_backend

            self.device.backend = coerce_backend(
                self.config.backend, workers=self.config.workers
            )
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy or RetryPolicy()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics or MetricsRegistry()
        cfg = self.config
        self.events = event_log if event_log is not None else EventLog(
            maxlen=cfg.event_log_maxlen
        )
        #: Per-request scratch the dispatch path fills (predicted cost,
        #: chosen rung, admission pressure) so ``handle`` can join them
        #: into the structured event record.  Reset at each request.
        self._req_obs: dict = {}
        self.admission = AdmissionController(
            self.clock, max_backlog=cfg.max_backlog, max_queue=cfg.max_queue
        )
        self.ladder = DegradationLadder(cfg.ladder_thresholds)
        self.indexes: dict[str, ServiceIndex] = {}
        self.breakers: dict[str, CircuitBreaker] = {}
        #: One row per handled request — the ground truth the metrics
        #: totals are checked against.
        self.ledger: list[dict] = []
        self.seq = 0
        self._cache: "OrderedDict[tuple, dict]" = OrderedDict()

        m = self.metrics
        self._m_requests = m.counter(
            "repro_service_requests_total", "requests handled, by op and status"
        )
        self._m_latency = m.histogram(
            "repro_service_request_seconds", "wall latency per request, by op"
        )
        self._m_shed = m.counter("repro_service_shed_total", "requests shed, by reason")
        self._m_degraded = m.counter(
            "repro_service_degraded_total", "degraded responses, by mode"
        )
        self._m_breaker = m.counter(
            "repro_service_breaker_trips_total", "breaker trips, by index"
        )
        self._m_deadline = m.counter(
            "repro_service_deadline_miss_total", "requests killed by their deadline"
        )
        self._m_retries = m.counter(
            "repro_service_kernel_retries_total", "transient kernel faults retried"
        )
        self._m_backlog = m.gauge(
            "repro_service_backlog_seconds", "admitted-but-undrained virtual work"
        )
        self._m_points = m.gauge("repro_service_index_points", "live points, by index")

        self.journal = Journal(journal_path)
        self.replayed_entries = self._replay_journal()

    # -- journal replay --------------------------------------------------------

    def _replay_journal(self) -> int:
        """Re-apply every journaled mutation, asserting each recorded
        fingerprint; returns the number of entries replayed."""
        count = 0
        for entry in self.journal.entries():
            op = entry.get("op")
            name = entry.get("index")
            try:
                if op == "create_index":
                    self._apply_create(name, entry)
                elif op == "drop_index":
                    self.indexes.pop(name, None)
                    self.breakers.pop(name, None)
                elif op == "insert":
                    self.indexes[name].insert(
                        np.asarray(entry["points"], dtype=np.float64), ids=entry["ids"]
                    )
                elif op == "delete":
                    self.indexes[name].delete(entry["ids"])
                else:
                    raise ValueError(f"unknown journal op {op!r}")
            except JournalCorruptError:
                raise
            except Exception as exc:
                raise JournalCorruptError(
                    f"journal entry {entry.get('seq')} ({op} on {name!r}) failed to "
                    f"replay: {exc}"
                ) from exc
            if op != "drop_index":
                got = self.indexes[name].fingerprint()
                want = entry.get("fingerprint")
                if want is not None and got != want:
                    raise JournalCorruptError(
                        f"journal entry {entry.get('seq')} replayed to fingerprint "
                        f"{got[:12]}, journal records {str(want)[:12]}"
                    )
            count += 1
        return count

    def _apply_create(self, name: str, entry: dict) -> None:
        if "points" in entry:
            X = np.asarray(entry["points"], dtype=np.float64)
        else:
            ds = entry["dataset"]
            X = load_dataset(ds["name"], ds["n"], seed=ds["seed"])
        self.indexes[name] = ServiceIndex(
            name, X, rebuild_every=self.config.rebuild_every,
            traversal=entry.get("traversal"),
        )

    # -- helpers ---------------------------------------------------------------

    def _breaker(self, name: str) -> CircuitBreaker:
        if name not in self.breakers:
            self.breakers[name] = CircuitBreaker(
                self.clock,
                failure_threshold=self.config.breaker_threshold,
                cooldown=self.config.breaker_cooldown,
            )
        return self.breakers[name]

    def _cost(self, req: Request) -> float:
        per_point = self.config.cost_per_point.get(req.op)
        if per_point is None:
            return 0.0  # ping/stats/metrics/drop_index: free
        if req.op in ("create_index", "insert"):
            n = req.points.shape[0] if req.points is not None else (
                req.dataset["n"] if req.dataset else 0
            )
        elif req.op == "delete":
            n = len(req.ids)
        else:
            index = self.indexes.get(req.index)
            n = index.n_live if index is not None else 0
            if req.points is not None:
                n = max(n, req.points.shape[0])
        model = self.config.cost_model
        if model is not None:
            # Ops with their own fitted per-point rates (count/knn) are
            # priced from exactly the work their kernels do; everything
            # else falls back to the pooled cluster rates, with the
            # hand-set constants only supplying the op's *relative*
            # weight.  A pure function of (op, n) — determinism holds.
            base = self.config.cost_per_point.get("cluster") or per_point
            est = model.cost_for_points(n, scale=per_point / base, op=req.op)
            if est is not None:
                return max(self.config.cost_floor, est)
        return max(self.config.cost_floor, per_point * n)

    def _journal_mutation(self, req: Request, extra: dict) -> None:
        entry = {"seq": self.seq, "op": req.op, "index": req.index}
        entry.update(extra)
        if req.op != "drop_index":
            entry["fingerprint"] = self.indexes[req.index].fingerprint()
        self.journal.append(entry)

    # -- the loop --------------------------------------------------------------

    def handle_line(self, line: str) -> dict:
        """One stdin-loop request: raw JSON text in, response dict out."""
        return self.handle(line)

    def handle(self, raw, arrival: float | None = None) -> dict:
        """Handle one request (raw JSON text/bytes or a decoded dict).

        ``arrival`` optionally advances the virtual clock first (the
        traffic generator's arrival process).  Never raises.
        """
        self.seq += 1
        seq = self.seq
        self._req_obs = {}
        if arrival is not None and arrival > self.clock.now():
            # SimClock only moves via sleep(); wall clocks ignore this.
            sleep = getattr(self.clock, "sleep", None)
            if sleep is not None:
                sleep(arrival - self.clock.now())
        t_wall = time.perf_counter()
        try:
            req = parse_request(
                raw,
                max_request_bytes=self.config.max_request_bytes,
                max_points=self.config.max_points,
            )
            req_id = req.id if req.id is not None else f"r{seq}"
            response, mode = self._dispatch(req, req_id, seq)
        except ProtocolError as exc:
            req, mode = None, None
            req_id = f"r{seq}"
            response = make_response(
                req_id, "rejected", error_code=exc.code, error_message=str(exc)
            )
            self._m_shed.inc(reason=exc.code)
        except Exception as exc:  # noqa: BLE001 - the loop must never die
            req, mode = None, None
            req_id = f"r{seq}"
            response = make_response(
                req_id, "error", error_code="internal", error_message=f"{type(exc).__name__}: {exc}"
            )
        wall = time.perf_counter() - t_wall
        op = req.op if req is not None else "invalid"
        status = response["status"]
        self._m_requests.inc(op=op, status=status)
        self._m_latency.observe(wall, op=op)
        self._m_backlog.set(self.admission.backlog())
        row = {
            "seq": seq,
            "id": req_id,
            "op": op,
            "index": req.index if req is not None else None,
            "status": status,
            "mode": response.get("mode"),
            "error_code": response.get("error", {}).get("code"),
            "wall_seconds": wall,
            "virtual_time": self.clock.now(),
            "backlog": self.admission.backlog(),
        }
        self.ledger.append(row)
        span = self.tracer.add_span(
            f"request:{op}", "service", t_wall, wall,
            attributes={k: v for k, v in row.items() if v is not None},
            status="ok" if status in ("ok", "degraded") else status,
        )
        obs = self._req_obs
        index_name = req.index if req is not None else None
        index = self.indexes.get(index_name) if index_name else None
        self.events.append({
            "seq": seq,
            "id": req_id,
            "op": op,
            "index": index_name,
            "index_generation": index.generation if index is not None else None,
            "status": status,
            "mode": response.get("mode"),
            "error_code": row["error_code"],
            "predicted_cost": obs.get("predicted_cost"),
            "observed_wall": wall,
            "rung": obs.get("rung"),
            "backlog": row["backlog"],
            "pressure": obs.get("pressure"),
            "retry_after": response.get("retry_after"),
            "trace_id": span.trace_id if span is not None else None,
            "span_id": span.span_id if span is not None else None,
        })
        return response

    def _dispatch(self, req: Request, req_id, seq: int) -> tuple[dict, str | None]:
        op = req.op
        # -- admin ops: always served, never admitted/metered ------------------
        if op == "ping":
            return make_response(req_id, "ok", result={"pong": True, "seq": seq}), None
        if op == "stats":
            return make_response(req_id, "ok", result=self._stats()), None
        if op == "metrics":
            self._refresh_gauges()
            return make_response(
                req_id, "ok", result={"prometheus": self.metrics.to_prometheus()}
            ), None

        # -- index existence ---------------------------------------------------
        if op == "create_index":
            if req.index in self.indexes:
                return make_response(
                    req_id, "error", error_code="conflict",
                    error_message=f"index {req.index!r} already exists",
                ), None
        elif req.index not in self.indexes:
            return make_response(
                req_id, "error", error_code="not_found",
                error_message=f"no index named {req.index!r}",
            ), None

        if op == "drop_index":
            self.indexes.pop(req.index)
            self.breakers.pop(req.index, None)
            self._journal_mutation(req, {})
            self._m_points.set(0, index=req.index)
            return make_response(req_id, "ok", result={"dropped": req.index}), None

        # -- circuit breaker ---------------------------------------------------
        breaker = self._breaker(req.index)
        allowed, retry_after = breaker.allow()
        if not allowed:
            self._m_shed.inc(reason="breaker_open")
            return make_response(
                req_id, "shed", retry_after=retry_after, mode="breaker_open"
            ), "breaker_open"

        # -- admission ---------------------------------------------------------
        predicted = self._cost(req)
        decision = self.admission.offer(predicted)
        self._req_obs.update(
            predicted_cost=predicted,
            pressure=decision.pressure,
            admitted=decision.admitted,
        )
        if not decision.admitted:
            self._m_shed.inc(reason="backpressure")
            return make_response(
                req_id, "shed", retry_after=decision.retry_after, mode="backpressure"
            ), "backpressure"
        rung = self.ladder.rung(decision.pressure)
        self._req_obs["rung"] = rung
        if rung == "shed" and op in ("cluster", "knn", "count"):
            self._m_shed.inc(reason="ladder")
            return make_response(
                req_id, "shed", retry_after=self.admission.backlog(), mode="ladder"
            ), "ladder"

        # -- deadline ----------------------------------------------------------
        deadline = Deadline(
            seconds=req.deadline_s if req.deadline_s is not None else self.config.default_deadline_s,
            max_checks=(
                req.deadline_checks
                if req.deadline_checks is not None
                else self.config.default_deadline_checks
            ),
            label=f"{req.index}:{op}:{seq}",
        )

        # -- execute under retries + fault injection ---------------------------
        phase = f"service[{req.index}:{op}:{seq}]"

        def attempt(attempt_no: int):
            ctx = (
                self.fault_plan.device_faults(self.device, phase, rank=0, attempt=attempt_no)
                if self.fault_plan is not None
                else nullcontext()
            )
            with ctx:
                return self._execute(req, rung, deadline)

        try:
            (result, mode), _attempts = call_with_retries(
                attempt,
                self.retry_policy,
                clock=self.clock,
                on_retry=lambda a, exc: self._m_retries.inc(index=req.index),
            )
        except _LadderShed:
            # knn has no degraded form below `single`: shed, not fake.
            self._m_shed.inc(reason="ladder")
            return make_response(
                req_id, "shed", retry_after=self.admission.backlog(), mode="ladder"
            ), "ladder"
        except DeadlineExceededError as exc:
            # A deadline miss is the request's failure, not the index's:
            # it must not feed the breaker.
            self._m_deadline.inc(op=op)
            return make_response(
                req_id, "error", error_code="deadline_exceeded", error_message=str(exc)
            ), None
        except (KernelFaultError, DeviceMemoryError) as exc:
            breaker.record_failure()
            if breaker.state == "open":
                self._m_breaker.inc(index=req.index)
            return make_response(
                req_id, "error", error_code="kernel_fault", error_message=str(exc)
            ), None
        except (ValueError, KeyError) as exc:
            # Semantically invalid against current state (bad k, unknown
            # ids, dim mismatch): the index is fine, the request is not.
            return make_response(
                req_id, "error", error_code="invalid", error_message=str(exc)
            ), None
        breaker.record_success()

        if req.index in self.indexes:
            self._m_points.set(self.indexes[req.index].n_live, index=req.index)
        status = "ok"
        if mode in ("count_only", "cache_miss_count_only"):
            status = "degraded"
            self._m_degraded.inc(mode=mode)
        return make_response(req_id, status, result=result, mode=mode), mode

    # -- execution -------------------------------------------------------------

    def _execute(self, req: Request, rung: str, deadline: Deadline) -> tuple[dict, str | None]:
        op = req.op
        watchdog = deadline.check
        index = self.indexes.get(req.index)

        if op == "create_index":
            if req.points is not None:
                X = req.points
            else:
                X = load_dataset(req.dataset["name"], req.dataset["n"], seed=req.dataset["seed"])
            self.indexes[req.index] = ServiceIndex(
                req.index, X,
                rebuild_every=self.config.rebuild_every, traversal=req.traversal,
            )
            extra: dict = {"traversal": req.traversal}
            if req.points is not None:
                extra["points"] = np.asarray(req.points, dtype=np.float64).tolist()
            else:
                extra["dataset"] = req.dataset
            self._journal_mutation(req, extra)
            si = self.indexes[req.index]
            return {"index": req.index, "n_points": si.n_live,
                    "fingerprint": si.fingerprint()}, None

        if op == "insert":
            ids = index.insert(req.points)
            self._journal_mutation(
                req, {"points": np.asarray(req.points, dtype=np.float64).tolist(), "ids": ids}
            )
            return {"ids": ids, "n_live": index.n_live,
                    "fingerprint": index.fingerprint()}, None

        if op == "delete":
            removed = index.delete(req.ids)
            self._journal_mutation(req, {"ids": sorted(set(int(i) for i in req.ids))})
            return {"deleted": removed, "n_live": index.n_live,
                    "fingerprint": index.fingerprint()}, None

        if op == "count":
            # Counts are the ladder's floor: always exact, any rung.
            result = index.count(
                req.eps, req.min_samples, queries=req.points,
                device=self.device, traversal="single", watchdog=watchdog,
            )
            return result, None

        if op == "knn":
            if rung in ("cached", "count_only"):
                # knn has no weaker exact form below `single`; shed it
                # rather than fake it.
                raise _LadderShed()
            traversal = "single" if rung == "single" else (req.traversal or "single")
            result = index.knn(
                req.k, queries=req.points, device=self.device,
                traversal=traversal, watchdog=watchdog,
            )
            return result, None if rung == "full" else "single"

        # -- cluster, down the ladder -----------------------------------------
        cache_key = (req.index, index.generation, req.eps, req.min_samples)
        if rung in ("full", "single"):
            traversal = (
                "single" if rung == "single" else (req.traversal or index.traversal or "single")
            )
            result = index.cluster(
                req.eps, req.min_samples, device=self.device,
                traversal=traversal, watchdog=watchdog,
            )
            self._cache[cache_key] = result
            self._cache.move_to_end(cache_key)
            while len(self._cache) > self.config.result_cache_size:
                self._cache.popitem(last=False)
            return result, None if rung == "full" else "single"
        if rung == "cached":
            hit = self._cache.get(cache_key)
            if hit is not None:
                self._cache.move_to_end(cache_key)
                return dict(hit), "cached"
            result = index.cluster(
                req.eps, req.min_samples, device=self.device,
                traversal="single", watchdog=watchdog, count_only=True,
            )
            return result, "cache_miss_count_only"
        # count_only rung
        result = index.cluster(
            req.eps, req.min_samples, device=self.device,
            traversal="single", watchdog=watchdog, count_only=True,
        )
        return result, "count_only"

    # -- reporting -------------------------------------------------------------

    def _refresh_gauges(self) -> None:
        """Re-derive the exposition-time gauges (SLO budgets, trace-drop
        health, event-ring evictions) from current state — called before
        every ``/metrics`` scrape and ``health()`` evaluation."""
        record_slo_gauges(
            self.metrics,
            evaluate_slos(self.metrics, self.config.slos, rows=self.ledger),
        )
        record_trace_health(self.metrics, tracer=self.tracer, devices=(self.device,))
        self.metrics.gauge(
            "repro_service_events_dropped",
            "structured events evicted from the bounded ring",
        ).set(self.events.dropped)

    def slo_status(self) -> list[dict]:
        """Every configured objective's error-budget status (``last:N``
        windows evaluate over the request ledger)."""
        return evaluate_slos(self.metrics, self.config.slos, rows=self.ledger)

    def health(self) -> dict:
        """Structured health: ``ok`` iff no breaker is open and every SLO
        is within budget.  The ``/healthz`` endpoint serialises this
        verbatim (HTTP 200 when ok, 503 otherwise)."""
        self._refresh_gauges()
        slos = self.slo_status()
        breakers = {
            name: {"state": b.state, "trips": b.trips}
            for name, b in self.breakers.items()
        }
        model = self.config.cost_model
        ok = all(s["ok"] for s in slos) and all(
            b["state"] != "open" for b in breakers.values()
        )
        return {
            "ok": ok,
            "indexes": {
                name: {"generation": si.generation, "n_live": si.n_live}
                for name, si in self.indexes.items()
            },
            "breakers": breakers,
            "admission": {
                "backlog": self.admission.backlog(),
                "pressure": self.admission.pressure(),
                "queue_depth": self.admission.queue_depth(),
            },
            "slos": slos,
            "events": self.events.stats(),
            "cost_model": (
                getattr(model, "source_fingerprint", None) if model is not None else None
            ),
        }

    def _stats(self) -> dict:
        model = self.config.cost_model
        return {
            "seq": self.seq,
            "backend": getattr(self.device.backend, "name", None) or "serial",
            "indexes": {name: si.stats() for name, si in self.indexes.items()},
            "breakers": {
                name: {"state": b.state, "trips": b.trips}
                for name, b in self.breakers.items()
            },
            "backlog": self.admission.backlog(),
            "pressure": self.admission.pressure(),
            "queue_depth": self.admission.queue_depth(),
            "admitted_total": self.admission.admitted_total,
            "shed_total": self.admission.shed_total,
            "journal_entries": len(self.journal),
            "replayed_entries": self.replayed_entries,
            "requests_handled": len(self.ledger),
            "events": self.events.stats(),
            "cost_model": (
                getattr(model, "source_fingerprint", None) if model is not None else None
            ),
        }

    def verify_metrics_ledger(self) -> dict:
        """Prove the Prometheus totals equal the request ledger.

        Returns the comparison (``ok`` plus both sides per check);
        raises ``AssertionError`` on any mismatch — CI calls this after
        every traffic run.
        """
        by_status: dict[str, int] = {}
        by_op_status: dict[tuple, int] = {}
        for row in self.ledger:
            by_status[row["status"]] = by_status.get(row["status"], 0) + 1
            key = (row["op"], row["status"])
            by_op_status[key] = by_op_status.get(key, 0) + 1
        checks = {
            "requests_total": (self._m_requests.total(), float(len(self.ledger))),
            "latency_count": (
                float(sum(n for (_op, _s), n in by_op_status.items())),
                float(len(self.ledger)),
            ),
            "degraded_total": (
                self._m_degraded.total(),
                float(by_status.get("degraded", 0)),
            ),
        }
        for (op, status), n in sorted(by_op_status.items()):
            checks[f"requests{{op={op},status={status}}}"] = (
                self._m_requests.value(op=op, status=status),
                float(n),
            )
        mismatches = {k: v for k, v in checks.items() if v[0] != v[1]}
        if mismatches:
            raise AssertionError(f"metrics/ledger mismatch: {mismatches}")
        return {"ok": True, "checks": {k: v[0] for k, v in checks.items()}}

    # -- stdin loop ------------------------------------------------------------

    def serve_lines(self, in_stream, out_stream) -> int:
        """Serve newline-delimited JSON until EOF; returns requests served."""
        import json as _json

        served = 0
        for line in in_stream:
            line = line.strip()
            if not line:
                continue
            response = self.handle(line)
            out_stream.write(_json.dumps(response, separators=(",", ":")) + "\n")
            out_stream.flush()
            served += 1
        return served


class _LadderShed(Exception):
    """Internal: an executor rung refused the op (knn below single)."""
