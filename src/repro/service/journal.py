"""Append-only mutation journal: crash-safe index state.

The service's durability contract is *write-ahead-after-apply*: a
mutation is applied in memory, the resulting index fingerprint is
computed, and the journal line — operation, payload, assigned ids, and
that fingerprint — is appended, flushed and fsynced **before** the
response is sent.  A crash therefore loses at most mutations the client
was never told succeeded; everything acknowledged replays.

On restart the service replays the journal in order, asserting after
every entry that the rebuilt index's fingerprint equals the recorded one
— bit-equality, not approximation — so replay divergence (a code change,
a corrupted line) is caught at the exact entry, as
:class:`JournalCorruptError`.

A torn final line (the crash landed mid-append) is *not* corruption: the
entry was never acknowledged, so it is dropped with a note.  A torn or
unparsable line anywhere else is.
"""

from __future__ import annotations

import json
import os


class JournalCorruptError(RuntimeError):
    """A journal line failed to parse or replay to its fingerprint."""


class Journal:
    """Append-only JSONL journal at ``path`` (``None`` = in-memory only —
    the same API, no durability; useful for tests and ephemeral serving)."""

    def __init__(self, path: str | None):
        self.path = path
        self._entries: list[dict] = []
        self.dropped_tail = False
        if path is not None and os.path.exists(path):
            self._entries = self._read(path)

    def _read(self, path: str) -> list[dict]:
        entries: list[dict] = []
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        # A trailing empty string after the final newline is normal.
        if lines and lines[-1] == "":
            lines.pop()
        for i, line in enumerate(lines):
            try:
                entry = json.loads(line)
                if not isinstance(entry, dict):
                    raise ValueError("journal entry is not an object")
            except ValueError as exc:
                if i == len(lines) - 1:
                    # Torn tail: the crash interrupted the append before
                    # the response was sent; the entry never happened.
                    self.dropped_tail = True
                    break
                raise JournalCorruptError(
                    f"journal line {i + 1} of {path} is corrupt: {exc}"
                ) from exc
            entries.append(entry)
        return entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[dict]:
        """The committed entries, oldest first (a copy)."""
        return list(self._entries)

    def append(self, entry: dict) -> None:
        """Durably append one entry (flush + fsync before returning)."""
        self._entries.append(entry)
        if self.path is None:
            return
        line = json.dumps(entry, separators=(",", ":"), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
