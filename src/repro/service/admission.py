"""Admission control: bounded backlog, explicit backpressure.

The request loop is synchronous, so "in-flight work" is modelled in
*virtual time*: every admitted request reserves a deterministic cost
estimate on a clock (a :class:`~repro.faults.clock.SimClock` in tests,
wall time in production), advancing ``busy_until``.  The gap
``busy_until - now`` is the **backlog** — the virtual seconds of already
admitted work — and the controller refuses new work once admitting it
would push the backlog over its bound, answering with the exact
``Retry-After`` that would drain enough of it.  A queue-depth cap bounds
the number of outstanding reservations independently of their size.

Deterministic by construction: the same arrival sequence with the same
cost estimates admits and sheds the same requests on any machine — which
is what lets the chaos suite assert shed counts from a seed.  The
backlog (normalised to ``pressure`` in ``[0, 1+]``) is also the signal
the degradation ladder reads.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AdmissionDecision:
    """The controller's verdict for one offered request."""

    admitted: bool
    #: Seconds until enough backlog drains for this request to fit
    #: (``0.0`` when admitted).
    retry_after: float
    #: Backlog (virtual seconds of admitted work) *before* this request.
    backlog: float
    #: ``backlog / max_backlog`` — the ladder's pressure signal.
    pressure: float
    #: Outstanding reservations before this request.
    queue_depth: int


class AdmissionController:
    """Backlog- and depth-bounded admission with explicit backpressure.

    Parameters
    ----------
    clock:
        Object with ``now() -> float`` (virtual or wall).
    max_backlog:
        Bound on admitted-but-undrained virtual work, in seconds.
    max_queue:
        Bound on outstanding reservations, regardless of size.
    """

    def __init__(self, clock, max_backlog: float = 2.0, max_queue: int = 128):
        if max_backlog <= 0:
            raise ValueError(f"max_backlog must be positive; got {max_backlog}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1; got {max_queue}")
        self.clock = clock
        self.max_backlog = float(max_backlog)
        self.max_queue = int(max_queue)
        self._busy_until = clock.now()
        #: Virtual finish times of outstanding reservations.
        self._finishes: list[float] = []
        self.admitted_total = 0
        self.shed_total = 0

    def _drain(self, now: float) -> None:
        self._finishes = [t for t in self._finishes if t > now]

    def backlog(self) -> float:
        """Admitted-but-undrained virtual seconds right now."""
        return max(0.0, self._busy_until - self.clock.now())

    def pressure(self) -> float:
        """Backlog normalised by its bound (the ladder's input)."""
        return self.backlog() / self.max_backlog

    def queue_depth(self) -> int:
        self._drain(self.clock.now())
        return len(self._finishes)

    def offer(self, cost: float) -> AdmissionDecision:
        """Offer a request with virtual cost estimate ``cost`` seconds.

        Admission reserves the cost (advancing ``busy_until``); refusal
        reports the seconds after which the same offer would fit.
        """
        cost = max(0.0, float(cost))
        now = self.clock.now()
        self._drain(now)
        backlog = max(0.0, self._busy_until - now)
        pressure = backlog / self.max_backlog
        depth = len(self._finishes)
        if depth >= self.max_queue:
            # Head-of-line drain time: the earliest outstanding finish.
            retry = max(min(self._finishes) - now, 0.0) or cost
            self.shed_total += 1
            return AdmissionDecision(False, retry, backlog, pressure, depth)
        if backlog + cost > self.max_backlog:
            retry = backlog + cost - self.max_backlog
            self.shed_total += 1
            return AdmissionDecision(False, retry, backlog, pressure, depth)
        self._busy_until = max(self._busy_until, now) + cost
        self._finishes.append(self._busy_until)
        self.admitted_total += 1
        return AdmissionDecision(True, 0.0, backlog, pressure, depth)
