"""The virtual regular grid of FDBSCAN-DenseBox.

The grid is *virtual*: only per-axis integer coordinates are ever
computed, and the set of non-empty cells is recovered by sorting the
per-point coordinates.  This is what lets the algorithm handle the
paper's cosmology configuration — 3.5 billion virtual cells, 28 million
non-empty — without allocating per-cell storage.

Cell length is ``eps / sqrt(d)``: the cell diagonal is then exactly
``eps``, so any two points sharing a cell are within ``eps`` of each
other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.device.primitives import sort_by_key

_FLAT_ID_LIMIT = np.int64(2) ** 62


@dataclass
class RegularGrid:
    """A virtual regular grid over an axis-aligned domain.

    Attributes
    ----------
    lo, hi:
        ``(d,)`` domain bounds (the data's bounding box).
    cell_size:
        Edge length of every cell, ``eps / sqrt(d)``.
    shape:
        ``(d,)`` int64 — number of cells along each axis (≥ 1).
    """

    lo: np.ndarray
    hi: np.ndarray
    cell_size: float
    shape: np.ndarray

    @property
    def dim(self) -> int:
        return self.lo.shape[0]

    @property
    def total_cells(self) -> int:
        """Number of virtual cells (a Python int — may exceed int64)."""
        return int(np.prod(self.shape.astype(object)))

    def cell_coords(self, points: np.ndarray) -> np.ndarray:
        """Per-axis integer cell coordinates of each point, ``(n, d)`` int64.

        Points on the upper domain boundary are clamped into the last cell
        (the half-open cell convention, closed at the domain edge).
        """
        points = np.asarray(points, dtype=np.float64)
        rel = (points - self.lo) / self.cell_size
        coords = np.floor(rel).astype(np.int64)
        np.clip(coords, 0, self.shape - 1, out=coords)
        return coords

    def flat_ids_fit(self) -> bool:
        """Whether flattened cell ids fit comfortably in int64."""
        return self.total_cells < int(_FLAT_ID_LIMIT)

    def flatten_coords(self, coords: np.ndarray) -> np.ndarray:
        """Row-major flattened cell id per coordinate row (int64).

        Only valid when :meth:`flat_ids_fit`; callers needing the general
        case use :func:`compact_cells`, which falls back to lexicographic
        row comparison.
        """
        if not self.flat_ids_fit():
            raise OverflowError(
                f"grid has {self.total_cells} cells; flat int64 ids would overflow"
            )
        flat = coords[:, 0].copy()
        for axis in range(1, self.dim):
            flat *= self.shape[axis]
            flat += coords[:, axis]
        return flat


def build_grid(points: np.ndarray, eps: float) -> RegularGrid:
    """Construct the virtual grid for a dataset and search radius.

    The domain is the data's bounding box; the cell edge is
    ``eps / sqrt(d)`` so the cell diameter is ``eps``.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError(f"points must be a non-empty (n, d) array; got {points.shape}")
    if eps <= 0 or not np.isfinite(eps):
        raise ValueError(f"eps must be positive and finite; got {eps}")
    dim = points.shape[1]
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    cell_size = float(eps) / math.sqrt(dim)
    extent = hi - lo
    shape = np.maximum(np.ceil(extent / cell_size), 1).astype(np.int64)
    # Guard against a point landing exactly on the open upper face due to
    # floating-point division: widen by one cell where that could happen.
    shape = np.where(extent >= shape * cell_size, shape + 1, shape)
    return RegularGrid(lo=lo, hi=hi, cell_size=cell_size, shape=shape)


def compact_cells(grid: RegularGrid, coords: np.ndarray):
    """Compact the occupied cells of a coordinate assignment.

    Returns ``(cell_of_point, n_cells, order, cell_starts, cell_counts)``:

    - ``cell_of_point``: compacted cell index in ``[0, n_cells)`` per point
      (dataset order); cells are numbered in flat-id (row-major) order;
    - ``order``: point indices sorted by cell (the CSR permutation);
    - ``cell_starts`` / ``cell_counts``: CSR segmentation of ``order`` by
      compacted cell.

    Uses int64 flat ids when they fit and falls back to a lexicographic
    sort of the coordinate rows for astronomically large virtual grids
    (the paper's billions-of-cells regime).
    """
    n = coords.shape[0]
    if grid.flat_ids_fit():
        flat = grid.flatten_coords(coords)
        sorted_flat, order = sort_by_key(flat)
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_flat[1:], sorted_flat[:-1], out=boundary[1:])
    else:  # lexicographic fallback: compare coordinate rows directly
        order = np.lexsort(coords.T[::-1])
        sorted_coords = coords[order]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        np.any(sorted_coords[1:] != sorted_coords[:-1], axis=1, out=boundary[1:])
    cell_rank_sorted = np.cumsum(boundary) - 1
    n_cells = int(cell_rank_sorted[-1]) + 1
    cell_of_point = np.empty(n, dtype=np.int64)
    cell_of_point[order] = cell_rank_sorted
    cell_starts = np.flatnonzero(boundary).astype(np.int64)
    cell_counts = np.diff(np.append(cell_starts, n)).astype(np.int64)
    return cell_of_point, n_cells, order.astype(np.int64), cell_starts, cell_counts
