"""Dense-cell decomposition and the mixed primitive set (Section 4.2).

A cell with at least ``minpts`` points is *dense*: its diameter is at most
``eps``, so every point in it is a core point and the whole cell belongs
to one cluster — no distance computations are needed among its members.

The decomposition produces, besides the dense/isolated classification,
the *mixed primitive set* from which the DenseBox BVH is built
(Figure 2, right): one degenerate box per isolated point followed by one
box per dense cell.  "The BVH only requires bounding volumes for a set of
objects", so such mixing imposes no constraint on the builder.  The
dense-cell boxes are the *tight* bounds of the member points — a subset of
the geometric cell, so every guarantee (diameter ≤ eps) still holds while
traversal pruning gets strictly better.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.device import Device, default_device
from repro.device.primitives import scatter_add
from repro.grid.grid import RegularGrid, build_grid, compact_cells


@dataclass
class GridBinning:
    """The eps-only half of the dense-cell decomposition.

    Grid geometry, per-point cell ids and the CSR cell membership depend
    only on the *points* and ``eps`` — never on ``minpts`` or sample
    weights.  Splitting them out lets a ``minpts`` sweep at fixed ``eps``
    bin the points once and re-threshold per parameter
    (:meth:`repro.core.index.DBSCANIndex.grid_binning` caches these).
    """

    grid: RegularGrid
    cell_of_point: np.ndarray
    n_cells: int
    cell_counts: np.ndarray
    members: np.ndarray
    cell_starts: np.ndarray

    def nbytes(self) -> int:
        return (
            self.cell_of_point.nbytes
            + self.cell_counts.nbytes
            + self.members.nbytes
            + self.cell_starts.nbytes
        )


def bin_points(
    points: np.ndarray,
    eps: float,
    device: Device | None = None,
) -> GridBinning:
    """Bin ``points`` into the eps-grid (the minpts-independent stage).

    Builds the virtual grid of cell length ``eps / sqrt(d)``, assigns
    every point its compacted occupied-cell index and produces the CSR
    membership arrays.  Each call increments the device's
    ``grid_binnings`` counter — the number the grid-reuse tests assert on.
    """
    dev = default_device(device)
    points = np.ascontiguousarray(points, dtype=np.float64)
    n = points.shape[0]
    dev.counters.add("grid_binnings", 1)
    with dev.kernel("grid_bin", threads=n) as launch:
        grid = build_grid(points, eps)
        coords = grid.cell_coords(points)
        cell_of_point, n_cells, members, cell_starts, cell_counts = compact_cells(
            grid, coords
        )
        launch.steps = 1
    binning = GridBinning(
        grid=grid,
        cell_of_point=cell_of_point,
        n_cells=n_cells,
        cell_counts=cell_counts,
        members=members,
        cell_starts=cell_starts,
    )
    dev.memory.allocate(binning.nbytes(), tag="grid")
    return binning


@dataclass
class DenseDecomposition:
    """Dense/isolated split of a dataset for given ``eps``/``minpts``.

    Attributes
    ----------
    grid:
        The virtual :class:`~repro.grid.grid.RegularGrid`.
    cell_of_point:
        Compacted occupied-cell index per point, ``(n,)``.
    n_cells:
        Number of occupied cells.
    cell_counts:
        Population of each occupied cell, ``(n_cells,)``.
    dense_mask:
        ``(n_cells,)`` bool — cells with ``>= minpts`` points.
    is_dense_point:
        ``(n,)`` bool — point lies in a dense cell.
    isolated_idx:
        Dataset indices of points outside dense cells.
    members:
        Point indices sorted by cell (CSR values shared by all cells).
    cell_starts:
        CSR offsets of ``members`` per occupied cell.
    dense_cells:
        Occupied-cell indices of the dense cells, ``(n_dense,)``.
    dense_rank_of_cell:
        ``(n_cells,)`` — dense rank of each occupied cell, -1 if not dense.
    prim_lo / prim_hi:
        The mixed primitive boxes: rows ``[0, n_isolated)`` are the
        isolated points (degenerate), rows ``[n_isolated, ...)`` the dense
        cell boxes.
    prim_is_box:
        ``(n_prims,)`` bool — primitive kind.
    prim_point:
        For point primitives, the dataset index; for box primitives, the
        *dense rank* (index into ``dense_cells``).
    """

    grid: RegularGrid
    cell_of_point: np.ndarray
    n_cells: int
    cell_counts: np.ndarray
    dense_mask: np.ndarray
    is_dense_point: np.ndarray
    isolated_idx: np.ndarray
    members: np.ndarray
    cell_starts: np.ndarray
    dense_cells: np.ndarray
    dense_rank_of_cell: np.ndarray
    prim_lo: np.ndarray
    prim_hi: np.ndarray
    prim_is_box: np.ndarray
    prim_point: np.ndarray

    @property
    def n_isolated(self) -> int:
        return self.isolated_idx.shape[0]

    @property
    def n_dense(self) -> int:
        return self.dense_cells.shape[0]

    @property
    def n_dense_points(self) -> int:
        return int(self.is_dense_point.sum())

    def dense_fraction(self) -> float:
        """Fraction of all points lying in dense cells — the quantity the
        paper reports (>95 % on the 2-D datasets; 13 %/2 %/0 % on the
        cosmology data as ``minpts`` grows)."""
        return self.n_dense_points / self.is_dense_point.shape[0]

    def dense_members(self, dense_rank: np.ndarray):
        """CSR view of the members of the given dense cells: returns
        ``(starts, counts)`` into :attr:`members`."""
        cells = self.dense_cells[dense_rank]
        return self.cell_starts[cells], self.cell_counts[cells]

    def nbytes(self) -> int:
        total = 0
        for arr in (
            self.cell_of_point,
            self.cell_counts,
            self.dense_mask,
            self.is_dense_point,
            self.isolated_idx,
            self.members,
            self.cell_starts,
            self.dense_cells,
            self.dense_rank_of_cell,
            self.prim_lo,
            self.prim_hi,
            self.prim_is_box,
            self.prim_point,
        ):
            total += arr.nbytes
        return total


def threshold_binning(
    points: np.ndarray,
    binning: GridBinning,
    minpts: int,
    device: Device | None = None,
    sample_weight: np.ndarray | None = None,
) -> DenseDecomposition:
    """Threshold a :class:`GridBinning` into a full decomposition.

    The minpts-dependent stage: classify cells as dense, derive the
    per-point dense flags and assemble the mixed primitive set over the
    *existing* binning.  The number of points absorbed into dense cells is
    recorded in the device's ``dense_cell_points`` counter.

    With ``sample_weight`` a cell is dense when its members' summed weight
    reaches ``minpts`` (the weighted-density generalisation; the dense-cell
    core guarantee carries over: every member's neighbourhood weight is at
    least the cell weight).
    """
    dev = default_device(device)
    points = np.ascontiguousarray(points, dtype=np.float64)
    n = points.shape[0]
    grid = binning.grid
    cell_of_point = binning.cell_of_point
    n_cells = binning.n_cells
    cell_counts = binning.cell_counts
    members = binning.members
    cell_starts = binning.cell_starts
    with dev.kernel("dense_threshold", threads=n) as launch:
        if sample_weight is None:
            dense_mask = cell_counts >= int(minpts)
        else:
            cell_weights = np.zeros(n_cells, dtype=np.float64)
            scatter_add(cell_weights, cell_of_point, sample_weight, counters=dev.counters)
            dense_mask = cell_weights >= float(minpts)
        is_dense_point = dense_mask[cell_of_point]
        isolated_idx = np.flatnonzero(~is_dense_point).astype(np.int64)
        dense_cells = np.flatnonzero(dense_mask).astype(np.int64)

        # Tight boxes per dense cell via segmented min/max over members.
        n_dense = dense_cells.shape[0]
        dim = points.shape[1]
        box_lo = np.empty((n_dense, dim), dtype=np.float64)
        box_hi = np.empty((n_dense, dim), dtype=np.float64)
        dense_rank_of_cell = np.full(n_cells, -1, dtype=np.int64)
        if n_dense:
            dense_rank_of_cell[dense_cells] = np.arange(n_dense, dtype=np.int64)
            member_rank = dense_rank_of_cell[cell_of_point[members]]
            in_dense = member_rank >= 0
            rows = member_rank[in_dense]
            pts = points[members[in_dense]]
            box_lo.fill(np.inf)
            box_hi.fill(-np.inf)
            np.minimum.at(box_lo, rows, pts)
            np.maximum.at(box_hi, rows, pts)

        iso_pts = points[isolated_idx]
        prim_lo = np.concatenate([iso_pts, box_lo], axis=0)
        prim_hi = np.concatenate([iso_pts, box_hi], axis=0)
        n_iso = isolated_idx.shape[0]
        prim_is_box = np.zeros(n_iso + n_dense, dtype=bool)
        prim_is_box[n_iso:] = True
        prim_point = np.concatenate(
            [isolated_idx, np.arange(n_dense, dtype=np.int64)]
        )
        launch.steps = 1

    dev.counters.add("dense_cell_points", int(is_dense_point.sum()))
    deco = DenseDecomposition(
        grid=grid,
        cell_of_point=cell_of_point,
        n_cells=n_cells,
        cell_counts=cell_counts,
        dense_mask=dense_mask,
        is_dense_point=is_dense_point,
        isolated_idx=isolated_idx,
        members=members,
        cell_starts=cell_starts,
        dense_cells=dense_cells,
        dense_rank_of_cell=dense_rank_of_cell,
        prim_lo=prim_lo,
        prim_hi=prim_hi,
        prim_is_box=prim_is_box,
        prim_point=prim_point,
    )
    # The binning arrays were already charged by bin_points; charge only
    # the threshold stage's additions so the total matches one decompose.
    dev.memory.allocate(deco.nbytes() - binning.nbytes(), tag="grid")
    return deco


def decompose(
    points: np.ndarray,
    eps: float,
    minpts: int,
    device: Device | None = None,
    sample_weight: np.ndarray | None = None,
) -> DenseDecomposition:
    """Run the dense-cell preprocessing of FDBSCAN-DenseBox.

    Convenience composition of the two stages: :func:`bin_points` (the
    eps-only grid binning) followed by :func:`threshold_binning` (the
    minpts classification and mixed primitive assembly).  Callers sweeping
    ``minpts`` at fixed ``eps`` should hold on to the binning — or use
    :class:`repro.core.index.DBSCANIndex`, which caches it — instead of
    calling this per parameter.
    """
    binning = bin_points(points, eps, device=device)
    return threshold_binning(
        points, binning, minpts, device=device, sample_weight=sample_weight
    )
