"""The auxiliary regular grid and dense-cell decomposition (Section 4.2).

FDBSCAN-DenseBox superimposes a Cartesian grid with cell length
``eps / sqrt(d)`` over the domain — the choice that "guarantees that the
diameter of each cell does not exceed eps", so every pair of points in one
cell is mutually within ``eps`` and a cell holding at least ``minpts``
points consists purely of core points of one cluster.

``grid``
    The virtual grid itself.  The paper stresses that the grid may have
    *billions* of cells with only a tiny population of non-empty ones
    (3.5 billion vs 28 million for the cosmology problem); accordingly the
    grid is never materialised — points are mapped to per-axis integer
    coordinates and the non-empty cells are obtained by sorting, with an
    overflow-safe lexicographic fallback when even the flattened int64
    cell id would overflow.

``dense_cells``
    Identifies the dense cells and assembles the *mixed primitive set* —
    isolated points plus one (tight) box per dense cell — from which the
    DenseBox BVH is built (Figure 2).
"""

from repro.grid.dense_cells import DenseDecomposition, decompose
from repro.grid.grid import RegularGrid, build_grid

__all__ = ["DenseDecomposition", "RegularGrid", "build_grid", "decompose"]
