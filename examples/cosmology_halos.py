#!/usr/bin/env python
"""Halo finding in a cosmology snapshot — the paper's Section 5.2 scenario.

Friends-of-Friends halo identification is DBSCAN with minpts = 2: halos
are connected components of the linking-length graph.  This example runs
the paper's two algorithms on a 3-D particle snapshot, prints a halo mass
function (halo counts per size decade), and reproduces the paper's
regime observation: at the physical eps the data is sparse and FDBSCAN
and DenseBox are comparable, while inflating eps pushes most particles
into dense cells and DenseBox pulls far ahead (Figure 7's 16x gap at
eps = 1.0).

Run:  python examples/cosmology_halos.py [n_particles]
"""

import sys
import time

import numpy as np

from repro import dbscan, dense_fraction_estimate
from repro.datasets import hacc_cosmology


def halo_mass_function(sizes: np.ndarray) -> list[tuple[str, int]]:
    """Halo counts per size decade (the standard summary in the field)."""
    bins = [(2, 10), (10, 100), (100, 1000), (1000, 10**9)]
    return [
        (f"{lo}-{hi if hi < 10**9 else 'inf'}", int(((sizes >= lo) & (sizes < hi)).sum()))
        for lo, hi in bins
    ]


def main(n: int = 80_000) -> None:
    X = hacc_cosmology(n, seed=42)
    eps_physical = 0.042  # the paper's physically meaningful linking length

    print(f"{n:,} particles, linking length eps={eps_physical} (minpts=2, FoF)\n")
    result = dbscan(X, eps_physical, 2, algorithm="fdbscan")
    sizes = result.cluster_sizes()
    print(f"halos found          : {result.n_clusters:,}")
    print(f"field particles      : {result.n_noise:,}")
    if sizes.size:
        print(f"largest halo         : {int(sizes.max()):,} particles")
    print("halo mass function   :")
    for label, count in halo_mass_function(sizes):
        print(f"  {label:>10} particles : {count:>7} halos")

    # The Figure-7 regime sweep: eps up, dense cells take over.
    print("\neps sweep (minpts=2): FDBSCAN vs FDBSCAN-DenseBox")
    print(f"{'eps':>6} {'dense frac':>11} {'fdbscan s':>10} {'densebox s':>11} {'speedup':>8}")
    for eps in (0.042, 0.25, 1.0):
        frac = dense_fraction_estimate(X, eps, 2)
        t0 = time.perf_counter()
        a = dbscan(X, eps, 2, algorithm="fdbscan")
        t_f = time.perf_counter() - t0
        t0 = time.perf_counter()
        b = dbscan(X, eps, 2, algorithm="fdbscan-densebox")
        t_d = time.perf_counter() - t0
        assert a.n_clusters == b.n_clusters
        print(f"{eps:>6} {frac:>10.1%} {t_f:>10.2f} {t_d:>11.2f} {t_f / t_d:>7.1f}x")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 80_000)
