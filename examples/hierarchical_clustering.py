#!/usr/bin/env python
"""Hierarchical density clustering (HDBSCAN) — beyond a single eps.

Flat DBSCAN needs one global ``eps``; when clusters have very different
densities no single value works — the setting the paper's DBSCAN*
discussion (Section 2.1) points to HDBSCAN for.  This example builds a
dataset with a tight core cluster, a diffuse cluster and background
noise, shows that every fixed eps mislabels something, and that the
hierarchy (built on the same BVH / union-find substrates) recovers both
clusters at once.  It also demonstrates the exact correspondence between
cutting the hierarchy and flat DBSCAN*.

Run:  python examples/hierarchical_clustering.py
"""

import numpy as np

from repro import dbscan, hdbscan
from repro.core.dbscan_star import dbscan_star
from repro.hierarchy import dbscan_star_cut
from repro.metrics import adjusted_rand_index, partitions_equal


def main() -> None:
    rng = np.random.default_rng(9)
    tight = rng.normal((0.0, 0.0), 0.03, size=(300, 2))
    diffuse = rng.normal((3.0, 0.0), 0.45, size=(300, 2))
    noise = rng.uniform((-1.5, -2.0), (4.5, 2.0), size=(80, 2))
    X = np.concatenate([tight, diffuse, noise])
    truth = np.concatenate([np.zeros(300), np.ones(300), np.full(80, -1)]).astype(int)

    print("flat DBSCAN across eps (min_samples=10):")
    print(f"{'eps':>6} {'clusters':>9} {'noise':>6} {'ARI vs truth':>13}")
    for eps in (0.05, 0.1, 0.2, 0.4, 0.8):
        res = dbscan(X, eps, 10, algorithm="fdbscan")
        ari = adjusted_rand_index(res.labels, truth)
        print(f"{eps:>6} {res.n_clusters:>9} {res.n_noise:>6} {ari:>13.3f}")

    res = hdbscan(X, min_cluster_size=30)
    ari = adjusted_rand_index(res.labels, truth)
    print(f"\nHDBSCAN (min_cluster_size=30): {res.n_clusters} clusters, "
          f"{res.n_noise} noise, ARI = {ari:.3f}")
    strong = res.probabilities > 0.9
    print(f"high-confidence members (p > 0.9): {int(strong.sum())} points")

    # The hierarchy generalises the flat algorithm: cutting it at eps IS
    # DBSCAN*.
    eps, minpts = 0.2, 10
    cut = dbscan_star_cut(X, eps, minpts)
    flat = dbscan_star(X, eps, minpts)
    assert np.array_equal(cut == -1, flat.labels == -1)
    assert partitions_equal(cut, flat.labels, cut >= 0)
    print(f"\nhierarchy cut at eps={eps} == flat DBSCAN*: verified "
          f"({int((cut >= 0).sum())} clustered points, identical partition)")


if __name__ == "__main__":
    main()
