#!/usr/bin/env python
"""Quickstart: cluster synthetic data with the public API.

Covers the three ways to call the library:

1. the one-shot :func:`repro.dbscan` function;
2. the sklearn-style :class:`repro.DBSCAN` estimator;
3. an instrumented run with an explicit :class:`repro.Device`, reading
   back the work counters and per-kernel timings the paper's analysis is
   based on.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DBSCAN, Device, dbscan
from repro.datasets import gaussian_blobs, noisy_rings
from repro.metrics import clustering_summary


def main() -> None:
    # --- 1. one-shot function on blobs ------------------------------------
    X = gaussian_blobs(2000, centers=4, std=0.08, box=5.0, seed=7, noise_fraction=0.05)
    result = dbscan(X, eps=0.25, min_samples=8)  # algorithm='auto'
    print("== gaussian blobs ==")
    for key, value in clustering_summary(result).items():
        print(f"  {key:>18}: {value}")

    # --- 2. estimator interface on rings (arbitrary-shape clusters) -------
    rings = noisy_rings(3000, rings=2, radius_step=1.0, noise=0.03, seed=1)
    model = DBSCAN(eps=0.15, min_samples=5, algorithm="fdbscan").fit(rings)
    print("\n== concentric rings (the shape k-means cannot split) ==")
    print(f"  clusters found : {model.n_clusters_}")
    print(f"  core samples   : {model.core_sample_indices_.shape[0]}")
    print(f"  noise points   : {int((model.labels_ == -1).sum())}")

    # --- 3. instrumented run: counters and kernel timings ------------------
    device = Device(name="example-gpu")
    result = dbscan(X, eps=0.25, min_samples=8, algorithm="fdbscan-densebox", device=device)
    print("\n== instrumented FDBSCAN-DenseBox run ==")
    print(f"  dense-cell fraction : {result.info['dense_fraction']:.1%}")
    print(f"  virtual grid cells  : {result.info['total_cells']:,}")
    counters = device.counters
    print(f"  distance evals      : {counters.distance_evals:,}")
    print(f"  BVH nodes visited   : {counters.nodes_visited:,}")
    print(f"  union operations    : {counters.union_ops:,}")
    print(f"  peak device memory  : {device.memory.peak_bytes / 1e6:.2f} MB")
    print("  per-kernel seconds  :")
    for name, secs in device.phase_seconds().items():
        print(f"    {name:<22} {secs:.4f}s")


if __name__ == "__main__":
    main()
