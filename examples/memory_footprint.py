#!/usr/bin/env python
"""Device-memory comparison — why the fused framework exists (Section 3.2).

The paper's central memory claim: algorithms that materialise the
adjacency graph (G-DBSCAN) need memory proportional to the *edge count*,
which explodes with density and eps, while the fused algorithms stay
linear in the point count.  The survey the paper cites measured G-DBSCAN
at 166x CUDA-DClust's footprint.

This example grows eps on a fixed dataset, reports each algorithm's peak
device bytes (broken down by data structure), and then caps the device to
show G-DBSCAN hitting the out-of-memory wall — the paper's missing data
points in Figure 4(h) — while FDBSCAN keeps running.

Run:  python examples/memory_footprint.py
"""

import numpy as np

from repro import Device, dbscan
from repro.datasets import portotaxi_traces
from repro.device import DeviceMemoryError


def main() -> None:
    n = 10_000
    X = portotaxi_traces(n, seed=5)
    minpts = 20

    print(f"peak device memory vs eps ({n:,} points, minpts={minpts})\n")
    print(f"{'eps':>7} {'fdbscan MB':>11} {'densebox MB':>12} {'gdbscan MB':>11} {'edges':>12}")
    for eps in (0.0025, 0.005, 0.01, 0.02, 0.04):
        row = []
        for algorithm in ("fdbscan", "fdbscan-densebox", "gdbscan"):
            device = Device(name=algorithm)
            result = dbscan(
                X, eps, minpts, algorithm=algorithm, device=device,
                **({"chunk_size": 1024} if algorithm != "gdbscan" else {}),
            )
            row.append(device.memory.peak_bytes / 1e6)
            edges = result.info.get("n_edges")
        print(f"{eps:>7} {row[0]:>11.2f} {row[1]:>12.2f} {row[2]:>11.2f} {edges:>12,}")

    # Breakdown by structure for one configuration.
    print("\nper-structure peaks at eps=0.02:")
    for algorithm in ("fdbscan", "gdbscan"):
        device = Device(name=algorithm)
        kwargs = {"chunk_size": 1024} if algorithm == "fdbscan" else {}
        dbscan(X, 0.02, minpts, algorithm=algorithm, device=device, **kwargs)
        print(f"  {algorithm}:")
        for tag, nbytes in device.memory.report()["peak_by_tag"].items():
            print(f"    {tag:<18} {nbytes / 1e6:>8.2f} MB")

    # The OOM wall: a 4 MB device.
    cap = 4_000_000
    print(f"\ncapped device ({cap / 1e6:.0f} MB), eps=0.04:")
    for algorithm in ("gdbscan", "fdbscan"):
        device = Device(name=algorithm, capacity_bytes=cap)
        kwargs = {"chunk_size": 1024} if algorithm == "fdbscan" else {}
        try:
            result = dbscan(X, 0.04, minpts, algorithm=algorithm, device=device, **kwargs)
            print(f"  {algorithm:<10} OK    ({result.n_clusters} clusters, "
                  f"peak {device.memory.peak_bytes / 1e6:.2f} MB)")
        except DeviceMemoryError as exc:
            print(f"  {algorithm:<10} OOM   ({exc.requested / 1e6:.1f} MB requested for "
                  f"'{exc.tag}')")


if __name__ == "__main__":
    main()
