#!/usr/bin/env python
"""Dataset gallery — the paper's Figures 3 and 5, in text.

Figure 3 of the paper shows 10,000-point samples of the three 2-D
datasets (NGSIM zoomed on one location); Figure 5 visualises the 3-D
cosmology snapshot.  This example renders the synthetic stand-ins the
same way as ASCII density maps, so the geometry the generators are
calibrated to — highway corridors, a street grid with taxi stands,
road filaments, halos on a sparse background — is visible at a glance.

Run:  python examples/dataset_gallery.py
"""

import numpy as np

from repro.bench.report import ascii_density
from repro.datasets import DATASETS, load_dataset


def main() -> None:
    n = 10_000  # the paper's Figure-3 sample size
    for name, spec in DATASETS.items():
        X = load_dataset(name, n, seed=1)
        if name == "ngsim":
            # the paper zooms on one of the three studied locations
            near_first = np.linalg.norm(X - X.min(axis=0), axis=1) < 0.05
            X_shown = X[near_first]
            title = f"== {name} (zoom on one corridor) — {spec.description}"
        else:
            X_shown = X
            title = f"== {name} — {spec.description}"
        print(ascii_density(X_shown, width=72, height=20, title=title))
        if spec.dim == 3:
            print(ascii_density(X, width=72, height=20,
                                title=f"== {name} (x-z projection)", axes=(0, 2)))
        print()


if __name__ == "__main__":
    main()
