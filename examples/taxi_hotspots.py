#!/usr/bin/env python
"""Taxi GPS hotspot mining — the paper's PortoTaxi scenario (Section 5.1).

Clusters a city-scale taxi GPS trace to find activity hotspots (taxi
stands, busy corridors), comparing all four GPU algorithms from the
paper's evaluation on the same workload and showing why the dense-box
variant dominates on this kind of data: most points fall into dense grid cells,
so almost all pairwise distance work is eliminated.  A tight radius
(eps = 0.002, ~200 m in degree units) separates individual hotspots; the
paper's study setting (0.01) connects the whole urban core into one
component.

Run:  python examples/taxi_hotspots.py [n_points]
"""

import sys

import numpy as np

from repro import Device, dbscan
from repro.datasets import portotaxi_traces


def main(n: int = 20_000) -> None:
    X = portotaxi_traces(n, seed=3)
    eps, minpts = 0.002, 50
    print(f"clustering {n:,} taxi GPS points, eps={eps}, minpts={minpts}\n")

    rows = []
    for algorithm in ("fdbscan", "fdbscan-densebox", "gdbscan", "cuda-dclust"):
        device = Device(name=algorithm)
        result = dbscan(X, eps, minpts, algorithm=algorithm, device=device)
        rows.append(
            (
                algorithm,
                result.info.get("t_build", 0)
                + result.info.get("t_preprocess", 0)
                + result.info.get("t_main", 0)
                + result.info.get("t_finalize", 0)
                or result.info.get("t_total", 0.0),
                result.n_clusters,
                result.n_noise,
                device.counters.distance_evals,
                device.memory.peak_bytes / 1e6,
            )
        )
    print(f"{'algorithm':<18} {'seconds':>8} {'clusters':>9} {'noise':>7} "
          f"{'dist evals':>12} {'peak MB':>8}")
    for name, secs, k, noise, evals, mb in rows:
        print(f"{name:<18} {secs:>8.3f} {k:>9} {noise:>7} {evals:>12,} {mb:>8.1f}")

    # Hotspot report from the DenseBox run.
    result = dbscan(X, eps, minpts, algorithm="fdbscan-densebox")
    print(f"\ndense-cell fraction: {result.info['dense_fraction']:.1%}")
    sizes = result.cluster_sizes()
    order = np.argsort(sizes)[::-1][:5]
    print("top hotspots (cluster centroid, size):")
    for cluster in order:
        members = result.labels == cluster
        cx, cy = X[members].mean(axis=0)
        print(f"  cluster {cluster:>3}: ({cx:.4f}, {cy:.4f})  {int(sizes[cluster]):>6} points")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20_000)
