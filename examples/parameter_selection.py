#!/usr/bin/env python
"""Parameter exploration with the amortised multi-minpts sweep (Section 3.2).

Choosing ``minpts`` is the practical pain point of DBSCAN.  The paper's
framework observes that a sweep should *not* use early-terminated core
counting: computing the full neighbourhood counts once amortises over
every ``minpts`` value.  This example sweeps a whole range with one index
build and one counting pass, reports how the clustering changes, and
scores each setting against the generator's ground truth with the
adjusted Rand index.

Run:  python examples/parameter_selection.py
"""

import numpy as np

from repro import Device, dbscan_minpts_sweep
from repro.datasets import gaussian_blobs
from repro.metrics import adjusted_rand_index


def main() -> None:
    n, centers = 6000, 5
    X = gaussian_blobs(n, centers=centers, std=0.12, box=6.0, seed=21, noise_fraction=0.08)
    truth = np.arange(n) % centers  # generator assignment (noise points differ)
    eps = 0.3
    values = [2, 4, 8, 16, 32, 64, 128]

    device = Device()
    results = dbscan_minpts_sweep(X, eps, values, device=device)

    shared = results[values[0]].info
    print(f"swept {len(values)} minpts values with one tree build "
          f"({shared['t_build']:.3f}s) and one counting pass "
          f"({shared['t_count']:.3f}s)\n")
    print(f"{'minpts':>7} {'clusters':>9} {'noise':>7} {'ARI vs truth':>13} {'main s':>7}")
    best = None
    for mp in values:
        res = results[mp]
        ari = adjusted_rand_index(res.labels, truth)
        print(f"{mp:>7} {res.n_clusters:>9} {res.n_noise:>7} {ari:>13.3f} "
              f"{res.info['t_main']:>7.3f}")
        if best is None or ari > best[1]:
            best = (mp, ari)
    print(f"\nbest setting by ARI: minpts = {best[0]} (ARI = {best[1]:.3f})")
    print(f"index built once: {sum(1 for l in device.launches if l.name == 'bvh_build')} "
          f"build kernel(s) for {len(values)} clusterings")


if __name__ == "__main__":
    main()
