#!/usr/bin/env python
"""Distributed DBSCAN across simulated ranks (Section 6 future work).

Decomposes a multi-million-cell cosmology snapshot over several ranks
with recursive coordinate bisection, clusters rank-locally with the fused
tree algorithm, and merges across rank boundaries — verifying that the
distributed result is DBSCAN-equivalent to a single-device run, and
reporting the decomposition balance and communication volume that a real
MPI deployment would tune.

Run:  python examples/distributed_clustering.py [n_particles] [n_ranks]
"""

import sys

from repro import dbscan
from repro.datasets import hacc_cosmology
from repro.distributed import distributed_dbscan
from repro.metrics import adjusted_rand_index, assert_dbscan_equivalent


def main(n: int = 40_000, n_ranks: int = 4) -> None:
    X = hacc_cosmology(n, seed=11)
    eps, minpts = 0.042, 5

    print(f"distributed DBSCAN: {n:,} particles over {n_ranks} ranks "
          f"(eps={eps}, minpts={minpts})\n")
    dist = distributed_dbscan(X, eps, minpts, n_ranks=n_ranks)
    single = dbscan(X, eps, minpts, algorithm="fdbscan")

    assert_dbscan_equivalent(dist, single, X, eps)
    ari = adjusted_rand_index(dist.labels, single.labels)
    print(f"equivalent to single-device run  : yes (ARI = {ari:.4f})")
    print(f"clusters / noise                 : {dist.n_clusters:,} / {dist.n_noise:,}")

    info = dist.info
    print("\ndecomposition:")
    print(f"{'rank':>5} {'owned':>8} {'ghosts':>8} {'ghost %':>8}")
    for r, (owned, ghosts) in enumerate(
        zip(info["owned_per_rank"], info["ghosts_per_rank"])
    ):
        print(f"{r:>5} {owned:>8,} {ghosts:>8,} {100 * ghosts / owned:>7.1f}%")

    print("\ncommunication:")
    for phase, nbytes in info["comm_by_phase"].items():
        print(f"  {phase:<26} {nbytes / 1e6:>8.2f} MB")
    print(f"  {'total':<26} {info['comm_bytes'] / 1e6:>8.2f} MB "
          f"({info['comm_messages']} messages)")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    ranks = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    main(n, ranks)
